"""The durable sweep store: keys, round trips, crash/resume, shard+merge.

The load-bearing guarantees, each pinned here:

* equal specs can never produce distinct store keys (params are
  canonicalized on construction, however the spec was built);
* a cached result is byte-for-byte the result a fresh run computes
  (ints, floats, bools, strings, tuples, None all survive the JSONL
  round trip);
* a sweep interrupted at any prefix and resumed via the store yields
  results, aggregates, and store contents identical to an uninterrupted
  run — across worker counts and engines;
* a 2-host-style shard+merge of the same grid equals the single-host
  run, with nothing recomputed on replay.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.sim.batch import (
    TrialResult,
    TrialSpec,
    TrialStore,
    aggregate,
    default_chunksize,
    flood_min_trial,
    grid,
    merge_stores,
    run_trials,
    shard,
    spec_key,
)


def _probe_task(spec: TrialSpec) -> TrialResult:
    """Deterministic task with every storable data type (picklable)."""
    return TrialResult(spec, spec.seed % 2 == 0, {
        "seed": spec.seed,
        "third": spec.seed / 3.0,
        "family": spec.family,
        "flag": spec.seed > 0,
        "pair": (spec.n, spec.family),
        "nothing": None,
    })


def _poison_task(spec: TrialSpec) -> TrialResult:
    """A task that must never run — proves replays come from the cache."""
    raise AssertionError(f"task executed for {spec} despite a full cache")


def _store_bytes(root: str) -> dict:
    """Every file under ``root`` as relpath -> bytes, for exact comparison."""
    contents = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                contents[os.path.relpath(path, root)] = handle.read()
    return contents


class TestSpecKeys:
    def test_direct_construction_canonicalizes_params(self):
        """Regression: unsorted direct construction == sorted TrialSpec.of."""
        direct = TrialSpec("cycle", 12, 3, (("zeta", 1), ("alpha", 2)))
        via_of = TrialSpec.of("cycle", 12, 3, zeta=1, alpha=2)
        assert direct == via_of
        assert direct.params == (("alpha", 2), ("zeta", 1))
        assert hash(direct) == hash(via_of)
        assert spec_key("t", direct) == spec_key("t", via_of)

    def test_list_pairs_normalize_to_tuples(self):
        spec = TrialSpec("cycle", 12, 3, (["b", 1], ["a", 2]))
        assert spec.params == (("a", 2), ("b", 1))
        assert hash(spec) == hash(TrialSpec.of("cycle", 12, 3, a=2, b=1))

    def test_key_depends_on_task_name_and_version(self):
        spec = TrialSpec.of("cycle", 12, 3, k=1)
        assert spec_key("a", spec) != spec_key("b", spec)
        assert spec_key("a", spec, version=1) != spec_key("a", spec, version=2)

    def test_key_distinguishes_specs(self):
        assert (spec_key("t", TrialSpec.of("cycle", 12, 3, k=1))
                != spec_key("t", TrialSpec.of("cycle", 12, 3, k=2)))

    def test_tuple_valued_params_are_keyable(self):
        a = TrialSpec.of("cycle", 12, 3, window=(2, 5))
        b = TrialSpec.of("cycle", 12, 3, window=(2, 6))
        assert spec_key("t", a) != spec_key("t", b)


class TestStoreRoundTrip:
    def test_put_get_is_identity(self, tmp_path):
        store = TrialStore(tmp_path)
        spec = TrialSpec.of("cycle", 12, 3)
        result = _probe_task(spec)
        store.put("t", spec, result)
        cached = store.get("t", spec)
        assert cached == result
        # Exact types, not just equality: bool stays bool, tuple stays
        # tuple, float stays float — aggregate() and the determinism
        # tests depend on it.
        assert isinstance(cached.data["seed"], int)
        assert not isinstance(cached.data["flag"], int) or \
            isinstance(cached.data["flag"], bool)
        assert isinstance(cached.data["pair"], tuple)
        assert isinstance(cached.data["third"], float)
        assert cached.data["nothing"] is None

    def test_reload_from_disk(self, tmp_path):
        spec = TrialSpec.of("cycle", 12, 3)
        TrialStore(tmp_path).put("t", spec, _probe_task(spec))
        reloaded = TrialStore(tmp_path)
        assert len(reloaded) == 1
        assert reloaded.get("t", spec) == _probe_task(spec)

    def test_miss_returns_none(self, tmp_path):
        store = TrialStore(tmp_path)
        assert store.get("t", TrialSpec.of("cycle", 12, 3)) is None

    def test_unstorable_data_raises(self, tmp_path):
        store = TrialStore(tmp_path)
        spec = TrialSpec.of("cycle", 12, 3)
        with pytest.raises(ConfigurationError, match="not storable"):
            store.put("t", spec, TrialResult(spec, True, {"x": object()}))

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        """A crash mid-append loses only the unacknowledged record."""
        store = TrialStore(tmp_path)
        specs = [TrialSpec.of("cycle", 12, s) for s in range(3)]
        for spec in specs:
            store.put("t", spec, _probe_task(spec))
        store.close()
        shard_dir = tmp_path / "shards"
        (path,) = list(shard_dir.iterdir())
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"key": "deadbeef", "task": "t", "ok": tr')
        reopened = TrialStore(tmp_path)
        assert len(reopened) == 3
        for spec in specs:
            assert reopened.get("t", spec) == _probe_task(spec)
        # And appending after the torn line still round-trips.
        extra = TrialSpec.of("cycle", 12, 99)
        reopened.put("t", extra, _probe_task(extra))
        assert TrialStore(tmp_path).get("t", extra) == _probe_task(extra)

    def test_put_is_idempotent(self, tmp_path):
        store = TrialStore(tmp_path)
        spec = TrialSpec.of("cycle", 12, 3)
        store.put("t", spec, _probe_task(spec))
        store.put("t", spec, _probe_task(spec))
        assert len(store) == 1

    def test_put_conflicting_result_raises(self, tmp_path):
        """Regression: a divergent payload for an existing key used to be
        silently dropped; it must raise like merge_stores' conflict rule."""
        store = TrialStore(tmp_path)
        spec = TrialSpec.of("cycle", 12, 3)
        store.put("t", spec, TrialResult(spec, True, {"x": 1}))
        with pytest.raises(ConfigurationError, match="conflicting"):
            store.put("t", spec, TrialResult(spec, True, {"x": 2}))
        with pytest.raises(ConfigurationError, match="conflicting"):
            store.put("t", spec, TrialResult(spec, False, {"x": 1}))
        # The stored record is untouched by the rejected puts.
        assert store.get("t", spec) == TrialResult(spec, True, {"x": 1})
        assert len(store) == 1

    def test_put_conflict_detected_across_reopen(self, tmp_path):
        """Disk-loaded records compare equal to identical fresh ones
        (idempotent re-put) and unequal to divergent ones (conflict)."""
        spec = TrialSpec.of("cycle", 12, 3)
        TrialStore(tmp_path).put("t", spec, _probe_task(spec))
        reopened = TrialStore(tmp_path)
        reopened.put("t", spec, _probe_task(spec))
        assert len(reopened) == 1
        with pytest.raises(ConfigurationError, match="conflicting"):
            reopened.put("t", spec, TrialResult(spec, True, {"seed": -1}))

    def test_describe_lists_tasks(self, tmp_path):
        store = TrialStore(tmp_path)
        spec = TrialSpec.of("cycle", 12, 3)
        store.put("beta", spec, _probe_task(spec))
        store.put("alpha", spec, _probe_task(spec))
        text = store.describe()
        assert "2 result(s)" in text
        assert text.index("alpha") < text.index("beta")


class TestRunTrialsWithStore:
    def test_fills_store_and_matches_cold_run(self, tmp_path):
        specs = grid(["cycle", "path"], [12], range(3), radius=12)
        cold = run_trials(flood_min_trial, specs, workers=1)
        store = TrialStore(tmp_path)
        warm = run_trials(flood_min_trial, specs, store=store)
        assert warm == cold
        assert len(store) == len(specs)

    def test_replay_never_executes_the_task(self, tmp_path):
        specs = [TrialSpec.of("cycle", 12, s) for s in range(4)]
        store = TrialStore(tmp_path)
        first = run_trials(_probe_task, specs, store=store, task_name="t")
        replay = run_trials(_poison_task, specs, store=store, task_name="t")
        assert replay == first

    def test_duplicate_specs_computed_once(self, tmp_path):
        spec = TrialSpec.of("cycle", 12, 3)
        store = TrialStore(tmp_path)
        results = run_trials(_probe_task, [spec, spec, spec], store=store)
        assert results == [_probe_task(spec)] * 3
        assert len(store) == 1

    def test_invalid_workers_rejected_even_on_warm_cache(self, tmp_path):
        """workers=0 must fail identically whether or not the cache is
        already full — cache state must not mask misconfiguration."""
        specs = [TrialSpec.of("cycle", 12, s) for s in range(3)]
        store = TrialStore(tmp_path)
        run_trials(_probe_task, specs, store=store, task_name="t")
        with pytest.raises(ConfigurationError, match="workers"):
            run_trials(_probe_task, specs, workers=0, store=store,
                       task_name="t")

    def test_shard_requires_store(self):
        with pytest.raises(ConfigurationError, match="store"):
            run_trials(_probe_task, [TrialSpec.of("cycle", 12, 3)],
                       shard=(0, 2))

    def test_default_task_name_is_module_qualified(self, tmp_path):
        store = TrialStore(tmp_path)
        run_trials(_probe_task, [TrialSpec.of("cycle", 12, 3)], store=store)
        (task_name,) = store.tasks()
        assert task_name.endswith("._probe_task")
        assert task_name.startswith(_probe_task.__module__)


class TestResumeDeterminism:
    """Satellite: kill-at-any-prefix + resume == uninterrupted, exactly."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("engine", ["fast", "array"])
    def test_interrupted_resume_is_byte_identical(self, tmp_path, workers,
                                                  engine):
        specs = grid(["cycle", "path"], [12], range(3), radius=12,
                     engine=engine)
        cold = run_trials(flood_min_trial, specs, workers=1)

        uninterrupted = TrialStore(tmp_path / "whole")
        whole = run_trials(flood_min_trial, specs, workers=workers,
                           store=uninterrupted)

        # Simulate a kill after an arbitrary prefix: only the first
        # trials reached the store, then the sweep reruns end to end.
        interrupted = TrialStore(tmp_path / "resumed")
        run_trials(flood_min_trial, specs[:4], workers=workers,
                   store=interrupted)
        resumed = run_trials(flood_min_trial, specs, workers=workers,
                             store=interrupted)

        assert whole == cold
        assert resumed == cold
        assert aggregate(resumed) == aggregate(cold)
        uninterrupted.close()
        interrupted.close()
        assert (_store_bytes(str(tmp_path / "resumed"))
                == _store_bytes(str(tmp_path / "whole")))

    def test_resume_at_every_prefix(self, tmp_path):
        specs = grid(["cycle"], [12], range(5), radius=12)
        cold = run_trials(flood_min_trial, specs, workers=1)
        for cut in range(len(specs) + 1):
            store = TrialStore(tmp_path / f"cut{cut}")
            run_trials(flood_min_trial, specs[:cut], store=store)
            assert run_trials(flood_min_trial, specs, store=store) == cold
            assert len(store) == len(specs)


class TestShardAndMerge:
    def test_shard_partitions_the_grid(self):
        specs = grid(["cycle", "path"], [12, 16], range(3))
        parts = [shard(specs, i, 3) for i in range(3)]
        seen = [spec for part in parts for spec in part]
        assert sorted(seen, key=specs.index) == specs
        assert sum(len(part) for part in parts) == len(specs)
        # Order within a slice follows grid order.
        assert parts[0] == specs[0::3]

    def test_shard_validates_bounds(self):
        specs = grid(["cycle"], [12], range(3))
        with pytest.raises(ConfigurationError):
            shard(specs, 3, 3)
        with pytest.raises(ConfigurationError):
            shard(specs, -1, 3)
        with pytest.raises(ConfigurationError):
            shard(specs, 0, 0)

    def test_shard_count_larger_than_grid_is_rejected(self):
        """Regression: count > len(specs) used to hand back silently
        empty slices; now it is a loud mis-sized-fleet error."""
        specs = grid(["cycle"], [12], range(3))
        with pytest.raises(ConfigurationError, match="exceeds the grid"):
            shard(specs, 0, 4)
        with pytest.raises(ConfigurationError, match="exceeds the grid"):
            shard([], 0, 1)
        # count == len(specs) is the boundary: one spec per slice.
        parts = [shard(specs, i, 3) for i in range(3)]
        assert [len(part) for part in parts] == [1, 1, 1]

    def test_two_host_shard_merge_equals_single_host(self, tmp_path):
        specs = grid(["cycle", "path"], [12], range(4), radius=12)
        cold = run_trials(flood_min_trial, specs, workers=1)

        host0 = TrialStore(tmp_path / "host0")
        host1 = TrialStore(tmp_path / "host1")
        partial = run_trials(flood_min_trial, specs, store=host0,
                             shard=(0, 2))
        run_trials(flood_min_trial, specs, store=host1, shard=(1, 2))
        assert len(host0) + len(host1) == len(specs)
        # Unowned positions come back as placeholders, never stored.
        assert [r for r in partial if r.data] == [r for i, r
                                                  in enumerate(partial)
                                                  if i % 2 == 0]

        merged = TrialStore(tmp_path / "merged")
        stats = merge_stores(merged, [host0, host1])
        assert stats == {"added": len(specs), "duplicate": 0}
        replay = run_trials(_poison_task, specs, store=merged,
                            task_name="repro.sim.batch.tasks.flood_min_trial")
        assert replay == cold
        assert aggregate(replay) == aggregate(cold)

    def test_merge_is_idempotent(self, tmp_path):
        spec = TrialSpec.of("cycle", 12, 3)
        src = TrialStore(tmp_path / "src")
        src.put("t", spec, _probe_task(spec))
        dest = TrialStore(tmp_path / "dest")
        assert merge_stores(dest, [src]) == {"added": 1, "duplicate": 0}
        assert merge_stores(dest, [src]) == {"added": 0, "duplicate": 1}
        assert len(dest) == 1

    def test_merge_accepts_paths(self, tmp_path):
        spec = TrialSpec.of("cycle", 12, 3)
        TrialStore(tmp_path / "src").put("t", spec, _probe_task(spec))
        dest = TrialStore(tmp_path / "dest")
        merge_stores(dest, [str(tmp_path / "src")])
        assert dest.get("t", spec) == _probe_task(spec)

    def test_merge_refuses_empty_source_list(self, tmp_path):
        """Regression: merging zero sources used to "succeed" as a no-op,
        hiding globs/fleets that produced no stores."""
        dest = TrialStore(tmp_path / "dest")
        with pytest.raises(ConfigurationError, match="at least one"):
            merge_stores(dest, [])
        with pytest.raises(ConfigurationError, match="at least one"):
            merge_stores(dest, iter(()))
        assert len(dest) == 0

    def test_merge_refuses_missing_source(self, tmp_path):
        """A typo'd source path must fail loudly, not merge nothing."""
        dest = TrialStore(tmp_path / "dest")
        with pytest.raises(ConfigurationError, match="does not exist"):
            merge_stores(dest, [str(tmp_path / "no-such-store")])
        assert not (tmp_path / "no-such-store").exists()

    def test_merge_refuses_conflicting_records(self, tmp_path):
        spec = TrialSpec.of("cycle", 12, 3)
        a = TrialStore(tmp_path / "a")
        a.put("t", spec, TrialResult(spec, True, {"x": 1}))
        b = TrialStore(tmp_path / "b")
        b.put("t", spec, TrialResult(spec, False, {"x": 2}))
        dest = TrialStore(tmp_path / "dest")
        merge_stores(dest, [a])
        with pytest.raises(ConfigurationError, match="conflicting"):
            merge_stores(dest, [b])


class TestAdaptiveChunksize:
    """Satellite: adaptive chunking must not reorder or change results."""

    def test_default_chunksize_formula(self):
        assert default_chunksize(64, 2) == 4
        assert default_chunksize(3, 8) == 1
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(1000, 4) == 31

    def test_adaptive_equals_chunksize_one(self):
        specs = grid(["cycle", "gnp-sparse"], [16], range(5), radius=12)
        adaptive = run_trials(flood_min_trial, specs, workers=4)
        one = run_trials(flood_min_trial, specs, workers=4, chunksize=1)
        serial = run_trials(flood_min_trial, specs, workers=1)
        assert adaptive == one == serial
        assert [r.spec for r in adaptive] == specs

    def test_adaptive_equals_chunksize_one_with_store(self, tmp_path):
        specs = grid(["cycle"], [12], range(6), radius=12)
        s1 = TrialStore(tmp_path / "one")
        s2 = TrialStore(tmp_path / "auto")
        one = run_trials(flood_min_trial, specs, workers=4, chunksize=1,
                         store=s1)
        auto = run_trials(flood_min_trial, specs, workers=4, store=s2)
        assert one == auto
        s1.close()
        s2.close()
        assert (_store_bytes(str(tmp_path / "one"))
                == _store_bytes(str(tmp_path / "auto")))


class TestExperimentsWithStore:
    def test_e06_resumes_from_store(self, tmp_path):
        from repro.analysis import EXPERIMENTS

        store = TrialStore(tmp_path)
        first = EXPERIMENTS["e06"](quick=True, seed=2, store=store)
        filled = len(store)
        assert filled > 0
        again = EXPERIMENTS["e06"](quick=True, seed=2, store=store)
        assert len(store) == filled  # pure cache replay
        assert again.render() == first.render()
        cold = EXPERIMENTS["e06"](quick=True, seed=2)
        assert cold.render() == first.render()

    def test_run_all_shard_mode_runs_only_sweeping_drivers(self, tmp_path):
        """Shard hosts must not burn time on drivers that store nothing."""
        from unittest import mock

        from repro.analysis import experiments

        calls = []

        def fake_driver(name):
            def driver(**kwargs):
                calls.append(name)
                return experiments.Table(title=name, rows=[])
            return driver

        registry = {name: fake_driver(name)
                    for name in experiments.EXPERIMENTS}
        with mock.patch.dict(experiments.EXPERIMENTS, registry,
                             clear=True):
            experiments.run_all(store=TrialStore(tmp_path), shard=(0, 2))
        assert sorted(calls) == sorted(experiments.SWEEPING)

    def test_e06_sharded_stores_merge_to_full_table(self, tmp_path):
        from repro.analysis import EXPERIMENTS

        host0 = TrialStore(tmp_path / "h0")
        host1 = TrialStore(tmp_path / "h1")
        EXPERIMENTS["e06"](quick=True, seed=2, store=host0, shard=(0, 2))
        EXPERIMENTS["e06"](quick=True, seed=2, store=host1, shard=(1, 2))
        merged = TrialStore(tmp_path / "merged")
        merge_stores(merged, [host0, host1])
        before = len(merged)
        table = EXPERIMENTS["e06"](quick=True, seed=2, store=merged)
        assert len(merged) == before
        assert table.render() == EXPERIMENTS["e06"](quick=True,
                                                    seed=2).render()


class TestStoreCLI:
    def test_list_and_merge_flags(self, tmp_path, capsys):
        from repro.analysis.cli import main

        spec = TrialSpec.of("cycle", 12, 3)
        TrialStore(tmp_path / "src").put("t", spec, _probe_task(spec))
        dest = str(tmp_path / "dest")
        assert main(["--store", dest, "--merge",
                     str(tmp_path / "src")]) == 0
        assert "1 added" in capsys.readouterr().out
        assert main(["--store", dest, "--list"]) == 0
        out = capsys.readouterr().out
        assert "1 result(s)" in out and "t: 1" in out

    def test_invalid_flag_combinations(self, tmp_path, capsys):
        from repro.analysis.cli import main

        assert main(["--shard-index", "0"]) == 2
        assert main(["--shard-index", "0", "--shard-count", "2"]) == 2
        assert main(["--merge", str(tmp_path / "src")]) == 2
        assert main(["--store", str(tmp_path / "s"),
                     "--shard-index", "2", "--shard-count", "2"]) == 2
        assert main(["--store", str(tmp_path / "s"), "--merge",
                     str(tmp_path / "no-such-store")]) == 2
        capsys.readouterr()
