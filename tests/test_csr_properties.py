"""Property tests: CSRGraph is a faithful snapshot of DistributedGraph.

For arbitrary graphs (random G(n, p) plus the named families), the CSR
arrays must reproduce the source's degrees, sorted neighbor lists, UID
assignment, and edge set exactly; construction must be deterministic
(round-trip stable); and the validation in the constructor must reject
malformed arrays.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, strategies as st

from helpers import family_graphs
from repro.errors import ConfigurationError
from repro.graphs import assign, make
from repro.sim.batch import CSRGraph
from repro.sim.graph import DistributedGraph


@st.composite
def distributed_graphs(draw):
    """Random connected-or-not graphs with random UID seeds."""
    n = draw(st.integers(min_value=1, max_value=40))
    p = draw(st.floats(min_value=0.0, max_value=0.5))
    graph_seed = draw(st.integers(min_value=0, max_value=10_000))
    uid_seed = draw(st.integers(min_value=0, max_value=10_000))
    g = nx.gnp_random_graph(n, p, seed=graph_seed)
    return DistributedGraph(g, uid_seed=uid_seed)


def assert_matches(csr: CSRGraph, graph: DistributedGraph):
    assert csr.n == graph.n
    assert csr.m == graph.nx.number_of_edges()
    for v in graph.nodes():
        assert csr.degree(v) == graph.degree(v)
        assert csr.neighbor_list(v) == list(graph.neighbors(v))
        assert list(csr.neighbors(v)) == list(graph.neighbors(v))
        assert csr.neighbor_sets[v] == set(graph.neighbors(v))
        assert csr.uid(v) == graph.uid(v)
        assert csr.index_of_uid(graph.uid(v)) == v
    assert csr.max_degree() == (graph.max_degree() if graph.n else 0)
    assert csr.uid_bits() == graph.uid_bits()
    assert sorted(csr.edges()) == sorted(graph.edges())


@given(distributed_graphs())
def test_csr_matches_source(graph):
    assert_matches(CSRGraph.from_graph(graph), graph)


@given(distributed_graphs())
def test_round_trip_is_stable(graph):
    first = CSRGraph.from_graph(graph)
    second = CSRGraph.from_graph(graph)
    assert first == second
    assert np.array_equal(first.offsets, second.offsets)
    assert np.array_equal(first.indices, second.indices)
    assert first.uids == second.uids


def test_every_family_matches():
    for _name, graph in family_graphs(32, seed=7):
        assert_matches(CSRGraph.from_graph(graph), graph)


def test_degrees_are_offset_differences():
    graph = assign(make("gnp-dense", 30, seed=3), "random", seed=3)
    csr = CSRGraph.from_graph(graph)
    assert np.array_equal(csr.degrees, np.diff(csr.offsets))
    assert int(csr.offsets[-1]) == 2 * csr.m


class TestValidation:
    def test_rejects_bad_offsets(self):
        with pytest.raises(ConfigurationError):
            CSRGraph(np.array([1, 2]), np.array([0]), (1, 2))

    def test_rejects_decreasing_offsets(self):
        with pytest.raises(ConfigurationError):
            CSRGraph(np.array([0, 2, 1, 4]), np.arange(4) % 3, (1, 2, 3))

    def test_rejects_out_of_range_neighbor(self):
        with pytest.raises(ConfigurationError):
            CSRGraph(np.array([0, 1, 2]), np.array([5, 0]), (1, 2))

    def test_rejects_duplicate_uids(self):
        with pytest.raises(ConfigurationError):
            CSRGraph(np.array([0, 1, 2]), np.array([1, 0]), (7, 7))

    def test_unhashable(self):
        csr = CSRGraph(np.array([0, 1, 2]), np.array([1, 0]), (4, 9))
        with pytest.raises(TypeError):
            hash(csr)
