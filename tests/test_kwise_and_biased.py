"""Exact distributional guarantees of the derived sources.

The k-wise test is the strongest in the suite: it enumerates the entire
seed space of a small construction and verifies that every k-subset of
output bits is *exactly* uniform — the defining property, not a
statistical approximation.
"""

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.randomness import EpsilonBiasedSource, KWiseSource
from repro.randomness.epsilon_biased import degree_for_bias


class TestKWiseExactness:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_exact_kwise_uniformity_by_enumeration(self, k):
        """Every k-tuple of output bits is uniform over the seed space."""
        num_nodes, bits_per_node = 3, 2
        points = [(v, i) for v in range(num_nodes)
                  for i in range(bits_per_node)]
        samples = []
        for source in KWiseSource.enumerate_seeds(k, num_nodes, bits_per_node):
            samples.append(tuple(source.bit(v, i) for v, i in points))
        total = len(samples)
        for subset in itertools.combinations(range(len(points)), k):
            counts = {}
            for sample in samples:
                key = tuple(sample[j] for j in subset)
                counts[key] = counts.get(key, 0) + 1
            expected = total / (2 ** k)
            for key in itertools.product((0, 1), repeat=k):
                assert counts.get(key, 0) == expected, (
                    f"subset {subset} pattern {key}: "
                    f"{counts.get(key, 0)} != {expected}"
                )

    def test_k1_from_one_seed_is_constant(self):
        """Degree-0 polynomial: all bits equal (the E2 failure mode)."""
        source = KWiseSource(1, 6, 4, coefficients=[1])
        bits = {source.bit(v, i) for v in range(6) for i in range(4)}
        assert len(bits) == 1

    def test_deterministic_given_seed(self):
        a = KWiseSource(4, 8, 8, seed=3)
        b = KWiseSource(4, 8, 8, seed=3)
        assert [a.bit(v, i) for v in range(8) for i in range(8)] == \
               [b.bit(v, i) for v in range(8) for i in range(8)]

    def test_seed_bits_is_k_times_m(self):
        source = KWiseSource(5, 16, 4, seed=0)
        assert source.seed_bits == 5 * source.field.m

    def test_out_of_range_node(self):
        source = KWiseSource(2, 4, 4, seed=0)
        with pytest.raises(ConfigurationError):
            source.bit(4, 0)

    def test_out_of_range_index(self):
        source = KWiseSource(2, 4, 4, seed=0)
        with pytest.raises(ConfigurationError):
            source.bit(0, 4)

    def test_coefficient_count_validated(self):
        with pytest.raises(ConfigurationError):
            KWiseSource(3, 4, 4, coefficients=[1, 2])

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            KWiseSource(0, 4, 4)
        with pytest.raises(ConfigurationError):
            KWiseSource(2, 0, 4)


class TestEpsilonBiased:
    def test_bias_bound_by_enumeration(self):
        """Max bias over all non-empty parities, over the full space."""
        num_bits = 6
        epsilon = 0.5
        sources = list(EpsilonBiasedSource.enumerate_seeds(1, num_bits, epsilon))
        total = len(sources)
        worst = 0.0
        for mask in range(1, 1 << num_bits):
            parity_sum = 0
            for source in sources:
                parity = 0
                for i in range(num_bits):
                    if (mask >> i) & 1:
                        parity ^= source.bit(0, i)
                parity_sum += parity
            bias = abs(parity_sum / total - 0.5) * 2
            worst = max(worst, bias)
        assert worst <= epsilon + 1e-9, f"worst bias {worst} > {epsilon}"

    def test_single_bits_not_constant_across_space(self):
        sources = list(EpsilonBiasedSource.enumerate_seeds(1, 4, 0.5))
        for i in range(4):
            values = {s.bit(0, i) for s in sources}
            assert values == {0, 1}

    def test_seed_bits_is_2m(self):
        source = EpsilonBiasedSource(16, 4, 0.01, seed=1)
        assert source.seed_bits == 2 * source.field.m

    def test_smaller_epsilon_needs_longer_seed(self):
        loose = EpsilonBiasedSource(16, 4, 0.25, seed=1)
        tight = EpsilonBiasedSource(16, 4, 1e-4, seed=1)
        assert tight.seed_bits > loose.seed_bits

    def test_deterministic_given_seed(self):
        a = EpsilonBiasedSource(8, 4, 0.1, seed=7)
        b = EpsilonBiasedSource(8, 4, 0.1, seed=7)
        assert [a.bit(v, i) for v in range(8) for i in range(4)] == \
               [b.bit(v, i) for v in range(8) for i in range(4)]

    def test_degree_for_bias_monotone(self):
        assert degree_for_bias(100, 0.01) >= degree_for_bias(100, 0.1)
        assert degree_for_bias(1000, 0.01) >= degree_for_bias(10, 0.01)

    def test_degree_for_bias_validates(self):
        with pytest.raises(ConfigurationError):
            degree_for_bias(8, 0.0)
        with pytest.raises(ConfigurationError):
            degree_for_bias(8, 1.5)

    def test_out_of_range_access(self):
        source = EpsilonBiasedSource(4, 2, 0.1)
        with pytest.raises(ConfigurationError):
            source.bit(5, 0)
        with pytest.raises(ConfigurationError):
            source.bit(0, 2)

    def test_seed_length_is_logarithmic(self):
        # O(log(n/eps)) shared bits for poly(n) bits at 1/poly(n) bias —
        # the Lemma 3.4 budget.
        source = EpsilonBiasedSource(1024, 1, 1.0 / 1024, seed=0)
        assert source.seed_bits <= 64
