"""RunReport composition and AlgorithmResult accessors."""

from repro.sim.metrics import AlgorithmResult, RunReport


class TestRunReport:
    def test_merge_adds_costs(self):
        a = RunReport(rounds=10, messages=5, total_bits=100,
                      max_message_bits=20, randomness_bits=7)
        b = RunReport(rounds=3, messages=2, total_bits=50,
                      max_message_bits=40, randomness_bits=1)
        merged = a.merge(b)
        assert merged.rounds == 13
        assert merged.messages == 7
        assert merged.total_bits == 150
        assert merged.max_message_bits == 40  # max, not sum
        assert merged.randomness_bits == 8

    def test_merge_accounted_is_sticky(self):
        measured = RunReport(accounted=False)
        accounted = RunReport(accounted=True)
        assert measured.merge(accounted).accounted
        assert accounted.merge(measured).accounted
        assert not measured.merge(RunReport()).accounted

    def test_merge_model_mixing(self):
        local = RunReport(model="LOCAL")
        congest = RunReport(model="CONGEST")
        assert local.merge(local).model == "LOCAL"
        assert local.merge(congest).model == "MIXED"

    def test_merge_concatenates_notes(self):
        a = RunReport(notes=["first"])
        b = RunReport(notes=["second"])
        assert a.merge(b).notes == ["first", "second"]

    def test_annotate_chains(self):
        report = RunReport().annotate("x").annotate("y")
        assert report.notes == ["x", "y"]

    def test_summary_keys(self):
        summary = RunReport(rounds=4, model="CONGEST").summary()
        assert summary["rounds"] == 4
        assert summary["model"] == "CONGEST"
        assert set(summary) == {
            "rounds", "messages", "total_bits", "max_message_bits",
            "randomness_bits", "accounted", "model",
        }

    def test_merge_does_not_mutate_inputs(self):
        a = RunReport(rounds=1, notes=["a"])
        b = RunReport(rounds=2, notes=["b"])
        a.merge(b)
        assert a.rounds == 1 and a.notes == ["a"]
        assert b.rounds == 2 and b.notes == ["b"]


class TestAlgorithmResult:
    def test_output_accessor(self):
        result = AlgorithmResult(outputs={0: "x", 1: "y"},
                                 report=RunReport())
        assert result.output_of(1) == "y"

    def test_extra_defaults_empty(self):
        result = AlgorithmResult(outputs={}, report=RunReport())
        assert result.extra == {}
        result.extra["k"] = 1
        assert result.extra["k"] == 1
