"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.graphs import assign, make
from repro.randomness import IndependentSource
from repro.sim.graph import DistributedGraph

# Project-wide hypothesis profile: deterministic-ish, quick, and immune
# to the slow-first-example health check (graph construction dominates).
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.data_too_large,
        # Fixtures used inside @given are stateless (field objects),
        # so not resetting them between examples is fine.
        HealthCheck.function_scoped_fixture,
    ],
)
settings.load_profile("repro")


@pytest.fixture
def cycle12() -> DistributedGraph:
    """A 12-cycle with random IDs — the smallest interesting topology."""
    return assign(make("cycle", 12), "random", seed=3)


@pytest.fixture
def grid36() -> DistributedGraph:
    """A 6x6 grid."""
    return assign(make("grid", 36), "random", seed=4)


@pytest.fixture
def gnp60() -> DistributedGraph:
    """A connected sparse G(n, p) on 60 nodes."""
    return assign(make("gnp-sparse", 60, seed=5), "random", seed=5)


@pytest.fixture
def dense40() -> DistributedGraph:
    """A denser G(n, p) on 40 nodes."""
    return assign(make("gnp-dense", 40, seed=6), "random", seed=6)


@pytest.fixture
def path9() -> DistributedGraph:
    """A 9-node path."""
    return assign(make("path", 9), "sequential")


@pytest.fixture
def source() -> IndependentSource:
    """Fresh independent randomness."""
    return IndependentSource(seed=2024)


from helpers import family_graphs  # noqa: E402,F401  (re-export; see helpers.py)
