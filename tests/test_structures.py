"""Solution structures: Decomposition, SplittingInstance, Hypergraph."""

import pytest

from repro.errors import ConfigurationError
from repro.structures import (
    Decomposition,
    Hypergraph,
    SplittingInstance,
    conflict_free_ok,
)


def three_blocks(cycle12):
    """Cycle of 12 split into 4 consecutive blocks of 3, colors 0,1,2,0->needs 3."""
    cluster_of = {v: v // 3 for v in range(12)}
    color_of = {0: 0, 1: 1, 2: 0, 3: 1}
    return Decomposition(cluster_of=cluster_of, color_of=color_of)


class TestDecomposition:
    def test_valid_decomposition(self, cycle12):
        d = three_blocks(cycle12)
        assert d.violations(cycle12) == []
        assert d.is_valid(cycle12, max_colors=2, max_diameter=2, strong=True)

    def test_clusters_partition(self, cycle12):
        d = three_blocks(cycle12)
        clusters = d.clusters()
        assert sorted(v for c in clusters.values() for v in c) == list(range(12))
        assert len(clusters) == 4

    def test_detects_missing_nodes(self, cycle12):
        d = three_blocks(cycle12)
        del d.cluster_of[5]
        assert any("unassigned" in p for p in d.violations(cycle12))

    def test_detects_adjacent_same_color(self, cycle12):
        d = three_blocks(cycle12)
        d.color_of[1] = 0  # clusters 0 and 1 are adjacent
        assert any("share color" in p for p in d.violations(cycle12))

    def test_detects_uncolored_cluster(self, cycle12):
        d = three_blocks(cycle12)
        del d.color_of[2]
        assert any("no color" in p for p in d.violations(cycle12))

    def test_detects_color_budget(self, cycle12):
        d = three_blocks(cycle12)
        assert not d.is_valid(cycle12, max_colors=1)

    def test_detects_diameter_budget(self, cycle12):
        d = three_blocks(cycle12)
        assert not d.is_valid(cycle12, max_diameter=1)

    def test_strong_vs_weak_diameter(self, cycle12):
        # Two antipodal singletons merged into one cluster: weak diameter
        # 6 but disconnected induced subgraph (strong diameter broken).
        cluster_of = {v: (0 if v in (0, 6) else 1) for v in range(12)}
        color_of = {0: 0, 1: 1}
        d = Decomposition(cluster_of=cluster_of, color_of=color_of)
        assert d.max_weak_diameter(cycle12) >= 6
        assert d.max_strong_diameter(cycle12) == cycle12.n  # sentinel

    def test_color_of_node(self, cycle12):
        d = three_blocks(cycle12)
        assert d.color_of_node(0) == 0
        assert d.color_of_node(3) == 1

    def test_congestion_without_trees_is_one(self, cycle12):
        assert three_blocks(cycle12).congestion() == 1

    def test_congestion_with_overlapping_trees(self, cycle12):
        d = three_blocks(cycle12)
        # Two same-color clusters whose trees share node 0.
        d.trees = {
            0: [(0, 1), (1, 2)],
            2: [(6, 7), (7, 8), (0, 1)],  # cluster 2 also uses node 0
            1: [(3, 4), (4, 5)],
            3: [(9, 10), (10, 11)],
        }
        assert d.congestion() == 2

    def test_tree_diameter(self, cycle12):
        d = three_blocks(cycle12)
        d.trees = {c: [] for c in d.color_of}
        d.trees[0] = [(0, 1), (1, 2)]
        assert d.max_tree_diameter() == 2

    def test_normalize_colors(self, cycle12):
        cluster_of = {v: v // 3 for v in range(12)}
        color_of = {0: 5, 1: 17, 2: 5, 3: 17}
        d = Decomposition(cluster_of=cluster_of, color_of=color_of)
        d.normalize_colors()
        assert set(d.color_of.values()) == {0, 1}
        assert d.color_of[0] == 0 and d.color_of[1] == 1

    def test_single_cluster_baseline(self, cycle12):
        d = Decomposition.single_cluster(cycle12)
        assert d.is_valid(cycle12)
        assert d.num_colors() == 1


class TestSplittingInstance:
    def test_valid_instance(self):
        inst = SplittingInstance(
            u_side=[0], v_side=[0, 1, 2],
            adjacency={0: [0, 1, 2]}, min_degree=3)
        assert inst.is_satisfied({0: 0, 1: 1, 2: 0})
        assert not inst.is_satisfied({0: 0, 1: 0, 2: 0})

    def test_violated_nodes(self):
        inst = SplittingInstance(
            u_side=[0, 1], v_side=[0, 1, 2, 3],
            adjacency={0: [0, 1], 1: [2, 3]}, min_degree=2)
        coloring = {0: 0, 1: 1, 2: 0, 3: 0}
        assert inst.violated_nodes(coloring) == [1]

    def test_degree_promise_enforced(self):
        with pytest.raises(ConfigurationError):
            SplittingInstance(
                u_side=[0], v_side=[0, 1],
                adjacency={0: [0]}, min_degree=2)

    def test_neighbors_must_be_in_v(self):
        with pytest.raises(ConfigurationError):
            SplittingInstance(
                u_side=[0], v_side=[0],
                adjacency={0: [0, 99]}, min_degree=1)


class TestHypergraph:
    def test_size_classes(self):
        hg = Hypergraph(
            vertices=list(range(10)),
            edges=[frozenset({0}), frozenset({1, 2}),
                   frozenset({3, 4, 5}), frozenset(range(5, 10))])
        classes = hg.classes()
        assert hg.size_class(frozenset({0})) == 1
        assert hg.size_class(frozenset({1, 2})) == 2
        assert hg.size_class(frozenset({3, 4, 5})) == 3
        assert sum(len(es) for es in classes.values()) == 4

    def test_rejects_empty_edge(self):
        with pytest.raises(ConfigurationError):
            Hypergraph(vertices=[0], edges=[frozenset()])

    def test_rejects_stray_vertices(self):
        with pytest.raises(ConfigurationError):
            Hypergraph(vertices=[0], edges=[frozenset({0, 1})])

    def test_conflict_free_ok(self):
        hg = Hypergraph(vertices=[0, 1, 2],
                        edges=[frozenset({0, 1, 2})])
        assert conflict_free_ok(hg, {0: {"a"}, 1: {"a"}, 2: {"b"}})
        assert not conflict_free_ok(hg, {0: {"a"}, 1: {"a"}, 2: set()})
        # A color held twice plus one unique color still passes.
        assert conflict_free_ok(hg, {0: {"a", "c"}, 1: {"a"}, 2: {"b"}})
        # All colors held exactly twice: no unique color anywhere.
        assert not conflict_free_ok(hg, {0: {"a", "c"}, 1: {"a"}, 2: {"c"}})
