"""ArrayEngine must be observationally identical to FastEngine.

The array engine replaces per-node Python dispatch with whole-round
numpy passes, and it is only allowed to be *faster*: for every program
pair (node program on FastEngine, array program on ArrayEngine), graph
family, size, seed, and model, the outputs and the full cost report —
rounds, messages, total/max bits, randomness bits — must match bit for
bit. The property-style sweep below runs the cross product
(family x size x seed) for Luby MIS, FloodMin, and BFS-forest, then the
engine-semantics cases (lying about n, uniformity, bandwidth, CSR
reuse) and the bulk sampler the array programs draw from.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from helpers import FAMILY_NAMES
from repro.core.mis import ArrayLubyMIS, LubyMIS, is_valid_mis, luby_mis
from repro.errors import (
    BandwidthExceeded,
    ConfigurationError,
    ModelViolation,
)
from repro.graphs import assign, make
from repro.randomness import IndependentSource
from repro.sim import CONGEST, LOCAL, ArrayEngine, FastEngine
from repro.sim.batch import CSRGraph
from repro.sim.batch.array import (
    ArrayProgram,
    int_message_bits,
    segment_reduce,
    tuple_message_bits,
)
from repro.sim.messages import message_bits
from repro.sim.primitives import (
    ArrayBFSForest,
    ArrayFloodMin,
    BFSTree,
    FloodMin,
    build_bfs_forest,
    flood_min,
)

#: The parity grid: every named family, two sizes, five seeds (the
#: acceptance bar asks for >= 3 families x >= 5 seeds).
PARITY_SIZES = (13, 32)
PARITY_SEEDS = tuple(range(5))


def assert_identical(ref, arr):
    assert arr.outputs == ref.outputs
    assert dataclasses.asdict(arr.report) == dataclasses.asdict(ref.report)


def parity_case(family, n, seed, node_factory, array_program, model,
                source_seed=None, **kwargs):
    g = assign(make(family, n, seed=seed), "random", seed=seed)
    src1 = IndependentSource(seed=source_seed) if source_seed is not None else None
    src2 = IndependentSource(seed=source_seed) if source_seed is not None else None
    ref = FastEngine(g, node_factory, source=src1, model=model, **kwargs).run()
    arr = ArrayEngine(g, array_program, source=src2, model=model, **kwargs).run()
    assert_identical(ref, arr)
    return g, arr


@pytest.mark.parametrize("family", FAMILY_NAMES)
class TestParitySweep:
    """outputs and RunReports bit-identical across (family x size x seed)."""

    def test_luby_mis(self, family):
        for n in PARITY_SIZES:
            for seed in PARITY_SEEDS:
                g, arr = parity_case(
                    family, n, seed, lambda _v: LubyMIS(), ArrayLubyMIS(),
                    CONGEST, source_seed=100 + seed)
                assert is_valid_mis(g, arr.outputs)
                assert all(isinstance(o, bool) for o in arr.outputs.values())

    def test_flood_min(self, family):
        for n in PARITY_SIZES:
            for seed in PARITY_SEEDS:
                radius = 1 + seed  # sweep radii along with seeds
                parity_case(family, n, seed, lambda _v: FloodMin(radius),
                            ArrayFloodMin(radius), CONGEST)

    def test_bfs_forest(self, family):
        for n in PARITY_SIZES:
            for seed in PARITY_SEEDS:
                roots = {0, seed + 1}
                parity_case(family, n, seed, lambda _v: BFSTree(roots, n),
                            ArrayBFSForest(roots, n), CONGEST,
                            max_rounds=n + 2)


class TestParitySemantics:
    def test_local_model(self, gnp60):
        ref = FastEngine(gnp60, lambda _v: FloodMin(4), model=LOCAL).run()
        arr = ArrayEngine(gnp60, ArrayFloodMin(4), model=LOCAL).run()
        assert_identical(ref, arr)

    def test_radius_zero_finishes_in_init(self, cycle12):
        ref = FastEngine(cycle12, lambda _v: FloodMin(0)).run()
        arr = ArrayEngine(cycle12, ArrayFloodMin(0)).run()
        assert_identical(ref, arr)
        assert arr.report.rounds == 0 and arr.report.messages == 0

    def test_empty_root_set(self, path9):
        ref = FastEngine(path9, lambda _v: BFSTree(set(), 3),
                         model=CONGEST, max_rounds=5).run()
        arr = ArrayEngine(path9, ArrayBFSForest(set(), 3),
                          model=CONGEST, max_rounds=5).run()
        assert_identical(ref, arr)
        assert all(out is None for out in arr.outputs.values())

    def test_lie_about_n(self, gnp60):
        ref = FastEngine(gnp60, lambda _v: LubyMIS(),
                         source=IndependentSource(seed=5), model=CONGEST,
                         n_override=4 * gnp60.n).run()
        arr = ArrayEngine(gnp60, ArrayLubyMIS(),
                          source=IndependentSource(seed=5), model=CONGEST,
                          n_override=4 * gnp60.n).run()
        assert_identical(ref, arr)

    def test_n_override_below_n_rejected(self, gnp60):
        with pytest.raises(ConfigurationError):
            ArrayEngine(gnp60, ArrayFloodMin(2), n_override=gnp60.n - 1)

    def test_uniform_denies_n(self, path9):
        class ReadN(ArrayProgram):
            def init(self, ctx):
                ctx.n  # must raise
                ctx.finish(np.arange(ctx.size), [None] * ctx.size)

        with pytest.raises(ModelViolation):
            ArrayEngine(path9, ReadN(), uniform=True).run()

    def test_randomness_denied_when_deterministic(self, path9):
        class Draw(ArrayProgram):
            def init(self, ctx):
                ctx.rand_uniform_each(np.arange(ctx.size), 4)

        with pytest.raises(ModelViolation):
            ArrayEngine(path9, Draw()).run()

    def test_bandwidth_enforced(self, path9):
        class BigBroadcast(ArrayProgram):
            def init(self, ctx):
                everyone = np.arange(ctx.size)
                return ctx.broadcast(everyone,
                                     np.full(ctx.size, 10_000, np.int64))

        with pytest.raises(BandwidthExceeded):
            ArrayEngine(path9, BigBroadcast(), model=CONGEST).run()

    def test_max_rounds_guard(self, path9):
        class Forever(ArrayProgram):
            def init(self, ctx):
                return None

            def step(self, ctx, round_index):
                return None

        with pytest.raises(ModelViolation):
            ArrayEngine(path9, Forever(), max_rounds=10).run()

    def test_reusable_csr_across_runs(self, gnp60):
        csr = CSRGraph.from_graph(gnp60)
        first = ArrayEngine(gnp60, ArrayFloodMin(4), csr=csr).run()
        second = ArrayEngine(gnp60, ArrayFloodMin(4), csr=csr).run()
        assert first.outputs == second.outputs
        ref = FastEngine(gnp60, lambda _v: FloodMin(4)).run()
        assert_identical(ref, second)

    def test_csr_from_different_graph_rejected(self):
        g1 = assign(make("gnp-sparse", 30, seed=1), "random", seed=1)
        g2 = assign(make("gnp-sparse", 30, seed=2), "random", seed=2)
        with pytest.raises(ConfigurationError):
            ArrayEngine(g1, ArrayFloodMin(1), csr=CSRGraph.from_graph(g2))


class TestEngineKnobs:
    """The engine= selector on the algorithm entry points and tasks."""

    def test_luby_mis_knob(self, gnp60):
        fast = luby_mis(gnp60, IndependentSource(seed=3), engine="fast")
        arr = luby_mis(gnp60, IndependentSource(seed=3), engine="array")
        assert_identical(fast, arr)
        with pytest.raises(ConfigurationError):
            luby_mis(gnp60, IndependentSource(seed=3), engine="warp")

    def test_flood_min_knob(self, cycle12):
        fast = flood_min(cycle12, 6, engine="fast")
        arr = flood_min(cycle12, 6, engine="array")
        assert_identical(fast, arr)
        with pytest.raises(ConfigurationError):
            flood_min(cycle12, 6, engine="warp")

    def test_bfs_forest_knob(self, gnp60):
        fast = build_bfs_forest(gnp60, {0, 7}, engine="fast")
        arr = build_bfs_forest(gnp60, {0, 7}, engine="array")
        assert_identical(fast, arr)
        with pytest.raises(ConfigurationError):
            build_bfs_forest(gnp60, {0}, engine="warp")

    def test_tasks_engine_param(self):
        from repro.sim.batch import (
            bfs_forest_trial,
            flood_min_trial,
            grid,
            luby_mis_trial,
            run_trials,
        )

        for task in (luby_mis_trial, flood_min_trial, bfs_forest_trial):
            fast = run_trials(task, grid(["gnp-sparse", "tree"], [24],
                                         range(3), engine="fast"))
            arr = run_trials(task, grid(["gnp-sparse", "tree"], [24],
                                        range(3), engine="array"))
            assert [(r.ok, r.data) for r in fast] == \
                   [(r.ok, r.data) for r in arr]
            with pytest.raises(ConfigurationError):
                task(grid(["cycle"], [12], [0], engine="warp")[0])

    def test_luby_trial_rejects_non_congest_model(self):
        from repro.sim import LOCAL
        from repro.sim.batch import grid, luby_mis_trial

        with pytest.raises(ConfigurationError, match="CONGEST"):
            luby_mis_trial(grid(["cycle"], [12], [0], model=LOCAL)[0])


class TestArrayHelpers:
    def test_int_message_bits_matches_encoder(self):
        values = [0, 1, 2, 3, 7, 8, 255, 256, 2**31 - 1, 2**31, 2**52 + 1]
        expected = [message_bits(v) for v in values]
        assert int_message_bits(np.array(values)).tolist() == expected
        with pytest.raises(ConfigurationError):
            int_message_bits(np.array([-1]))

    def test_tuple_message_bits_matches_encoder(self):
        assert tuple_message_bits(message_bits(5), message_bits(0)) == \
            message_bits((5, 0))
        assert tuple_message_bits(
            message_bits("p"), message_bits(77), message_bits(12)
        ) == message_bits(("p", 77, 12))

    def test_segment_reduce_empty_and_trailing_segments(self):
        # Segments: [5, 3], [], [2], [] — incl. empty trailing segment.
        offsets = np.array([0, 2, 2, 3, 3])
        values = np.array([5, 3, 2])
        assert segment_reduce(values, offsets, np.minimum,
                              np.iinfo(np.int64).max).tolist() == \
            [3, np.iinfo(np.int64).max, 2, np.iinfo(np.int64).max]
        assert segment_reduce(values, offsets, np.add, 0).tolist() == \
            [8, 0, 2, 0]

    def test_wide_uids_rejected(self):
        from repro.sim.graph import DistributedGraph
        import networkx as nx

        g = DistributedGraph(nx.path_graph(3), uids=[1, 2, 2**62])
        with pytest.raises(ConfigurationError):
            ArrayEngine(g, ArrayFloodMin(1))
        # The widest machine-word UID the contract allows still works.
        g = DistributedGraph(nx.path_graph(3), uids=[1, 2, 2**62 - 1])
        ref = FastEngine(g, lambda _v: FloodMin(2)).run()
        arr = ArrayEngine(g, ArrayFloodMin(2)).run()
        assert_identical(ref, arr)


class TestUniformIntEach:
    """The bulk per-node sampler is sequential-equivalent."""

    def test_matches_uniform_int(self):
        for bound in (1, 2, 3, 10, 1000, 2**20 + 7):
            ref = IndependentSource(seed=42)
            bulk = IndependentSource(seed=42)
            nodes = list(range(8))
            offsets = [3 * v for v in nodes]
            expected = [ref.uniform_int(v, bound, offsets[i])
                        for i, v in enumerate(nodes)]
            values, used = bulk.uniform_int_each(nodes, bound,
                                                 np.array(offsets))
            assert values.tolist() == [v for v, _ in expected]
            assert used.tolist() == [u for _, u in expected]
            assert bulk.bits_consumed == ref.bits_consumed

    def test_rejects_bad_bound(self):
        with pytest.raises(ConfigurationError):
            IndependentSource(seed=1).uniform_int_each([0], 0, [0])

    def test_bounded_stream_fallback(self):
        from repro.randomness import KWiseSource

        bound = 13
        ref = KWiseSource(k=4, num_nodes=8, bits_per_node=64, seed=9)
        bulk = KWiseSource(k=4, num_nodes=8, bits_per_node=64, seed=9)
        nodes = list(range(4))
        expected = [ref.uniform_int(v, bound, 0) for v in nodes]
        values, used = bulk.uniform_int_each(nodes, bound, [0] * 4)
        assert values.tolist() == [v for v, _ in expected]
        assert used.tolist() == [u for _, u in expected]
        assert bulk.bits_consumed == ref.bits_consumed
