"""The seed-sweep runner: grid construction, fan-out, determinism.

The load-bearing guarantee is the regression test that ``workers=1``
and ``workers=4`` return result-for-result identical lists — process
fan-out must never change what a sweep computes, only how fast.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.batch import (
    TrialResult,
    TrialSpec,
    aggregate,
    flood_min_trial,
    grid,
    luby_mis_trial,
    resolve_workers,
    run_trials,
)


class TestTrialSpec:
    def test_of_sorts_params(self):
        spec = TrialSpec.of("cycle", 12, 3, zeta=1, alpha=2)
        assert spec.params == (("alpha", 2), ("zeta", 1))
        assert spec.param("alpha") == 2
        assert spec.param("missing", "dflt") == "dflt"
        assert spec.kwargs == {"alpha": 2, "zeta": 1}

    def test_specs_are_hashable_and_comparable(self):
        a = TrialSpec.of("cycle", 12, 3, k=1)
        b = TrialSpec.of("cycle", 12, 3, k=1)
        assert a == b and hash(a) == hash(b)

    def test_direct_construction_is_canonicalized(self):
        """Regression: unsorted params passed directly (not via .of) must
        still compare and hash equal — equal specs can never produce
        distinct durable-store keys."""
        direct = TrialSpec("cycle", 12, 3, (("zeta", 1), ("alpha", 2)))
        via_of = TrialSpec.of("cycle", 12, 3, zeta=1, alpha=2)
        assert direct.params == (("alpha", 2), ("zeta", 1))
        assert direct == via_of and hash(direct) == hash(via_of)

    def test_grid_is_full_cross_product(self):
        specs = grid(["path", "cycle"], [10, 20], range(3), radius=2)
        assert len(specs) == 12
        assert specs[0] == TrialSpec.of("path", 10, 0, radius=2)
        assert specs[-1] == TrialSpec.of("cycle", 20, 2, radius=2)


class TestRunTrials:
    def test_serial_runs_in_order(self):
        specs = grid(["cycle"], [12], range(4), radius=3)
        results = run_trials(flood_min_trial, specs, workers=1)
        assert [r.spec for r in results] == specs
        assert all(isinstance(r, TrialResult) for r in results)

    def test_workers_determinism(self):
        """Seed determinism across process fan-out (the regression)."""
        specs = grid(["cycle", "gnp-sparse", "expander"], [16, 24], range(3))
        serial = run_trials(luby_mis_trial, specs, workers=1)
        fanned = run_trials(luby_mis_trial, specs, workers=4)
        assert serial == fanned

    def test_workers_determinism_flood(self):
        specs = grid(["caterpillar", "tree"], [20], range(4), radius=6)
        serial = run_trials(flood_min_trial, specs, workers=1)
        fanned = run_trials(flood_min_trial, specs, workers=4)
        assert serial == fanned

    def test_chunksize_never_affects_results(self):
        """Adaptive default chunking (chunksize=None) and any explicit
        chunk size return the same results in the same order."""
        specs = grid(["cycle", "tree"], [16], range(4), radius=6)
        baseline = run_trials(flood_min_trial, specs, workers=1)
        for chunksize in (None, 1, 2, 100):
            fanned = run_trials(flood_min_trial, specs, workers=4,
                                chunksize=chunksize)
            assert fanned == baseline
            assert [r.spec for r in fanned] == specs

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigurationError):
            run_trials(flood_min_trial, grid(["cycle"], [12], [0]), workers=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3
        assert resolve_workers(2) == 2

    def test_non_integer_env_is_a_configuration_error(self, monkeypatch):
        """$REPRO_WORKERS=junk must not leak a bare ValueError."""
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError, match="many"):
            resolve_workers(None)

    def test_empty_grid(self):
        assert run_trials(flood_min_trial, [], workers=4) == []


class TestAggregate:
    def test_groups_and_summarizes(self):
        specs = grid(["cycle"], [12, 18], range(3), radius=12)
        rows = aggregate(run_trials(flood_min_trial, specs, workers=1))
        assert len(rows) == 2
        for row in rows:
            assert row["family"] == "cycle"
            assert row["trials"] == 3
            # radius >= diameter, so FloodMin finds the global min.
            assert row["success"] == 1.0
            assert row["rounds(min)"] <= row["rounds(mean)"] <= row["rounds(max)"]

    def test_custom_grouping(self):
        results = [
            TrialResult(TrialSpec.of("a", 8, s, k=k), True, {"x": s})
            for k in (1, 2) for s in range(2)
        ]
        rows = aggregate(results, by=("family", "n", "seed"))
        assert len(rows) == 2  # grouped by seed, k collapses
        assert rows[0]["x(mean)"] == 0 and rows[1]["x(mean)"] == 1

    def test_bool_metrics_are_not_aggregated(self):
        """Bools are verdicts, not metrics: no (min)/(mean)/(max) columns."""
        results = [
            TrialResult(TrialSpec.of("a", 8, s), True,
                        {"valid": s % 2 == 0, "rounds": 3 + s})
            for s in range(4)
        ]
        (row,) = aggregate(results)
        assert row["rounds(mean)"] == 4.5  # numeric metrics still summarized
        for suffix in ("min", "mean", "max"):
            assert f"valid({suffix})" not in row
