"""The scenario layer: spec model, loader, library, faults, coordination.

Covers the guarantees the layer advertises: strict two-way
serialization (load -> serialize -> load is exact, digests ignore key
order, junk fails loudly), compilation to the same TrialSpec grids the
hand-written sweeps used (plain scenarios add zero params, so store
keys are unchanged), every library scenario running end-to-end at a
tiny scale, seeded per-round fault injection staying deterministic,
and scenario work units surviving the JSON trip through a coordinator.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.coordinated import execute_experiment_unit, scenario_units
from repro.analysis.experiments import SCENARIO_PLANS, scenario_plan
from repro.analysis.tables import scenario_table
from repro.core.mis import luby_mis
from repro.errors import ConfigurationError
from repro.graphs import assign, make
from repro.graphs.generators import (
    FAMILIES,
    cluster_of_cliques,
    dumbbell,
    gnp,
    lopsided,
    random_regular,
)
from repro.randomness import IndependentSource
from repro.scenarios import (
    FaultModel,
    ScenarioSpec,
    available,
    dumps,
    load_named,
    loads,
    register_task,
    resolve_task,
    scenario_from_arg,
    sweep_scenario,
)
from repro.sim.batch import RoundFaultPlan, TrialResult, TrialSpec, TrialStore


def _rich_scenario() -> ScenarioSpec:
    """One scenario exercising every optional section at once."""
    return sweep_scenario(
        "rich", "luby-mis", "path", (8, 12),
        description="every knob at once",
        engine="fast", ids="adversarial", bit_budget=4096,
        faults=FaultModel(crash=0.1, loss=0.2, seed=9, start_round=2),
        seed_base=3, seed_count=2, max_rounds=500)


class TestSerialization:
    def test_library_round_trips_exactly(self):
        for name in available():
            spec = load_named(name)
            again = loads(dumps(spec), source=name)
            assert again == spec, name
            assert again.digest() == spec.digest(), name

    def test_rich_round_trip(self):
        spec = _rich_scenario()
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec
        assert loads(dumps(spec)) == spec

    def test_digest_ignores_key_order(self):
        spec = load_named("crash-midround")
        data = spec.to_dict()
        shuffled = json.dumps(dict(reversed(list(data.items()))))
        assert loads(shuffled).digest() == spec.digest()

    def test_to_dict_omits_defaults(self):
        spec = sweep_scenario("plain", "luby-mis", "path", (8,))
        data = spec.to_dict()
        assert set(data) == {"name", "graph", "algorithm"}
        assert data["algorithm"] == {"task": "luby-mis"}

    def test_digest_differs_on_content(self):
        a = sweep_scenario("s", "luby-mis", "path", (8,))
        b = sweep_scenario("s", "luby-mis", "path", (9,))
        assert a.digest() != b.digest()


class TestValidation:
    @pytest.mark.parametrize("data", [
        {"name": "x", "bogus": 1},
        {"name": ""},
        {"name": "x"},  # sweep without graph/algorithm
        {"name": "x", "graph": {"family": "path", "sizes": [8]}},
        {"name": "x", "graph": {"family": "path", "sizes": []},
         "algorithm": {"task": "luby-mis"}},
        {"name": "x", "graph": {"family": "path", "sizes": [0]},
         "algorithm": {"task": "luby-mis"}},
        {"name": "x", "graph": {"family": "path", "sizes": 8},
         "algorithm": {"task": "luby-mis"}},
        {"name": "x", "graph": {"family": "path", "sizes": [8], "junk": 1},
         "algorithm": {"task": "luby-mis"}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis", "engine": "quantum"}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis",
                       "params": {"engine": "array"}}},  # reserved key
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis", "params": {"w": [1, 2]}}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis"},
         "ids": {"scheme": "alphabetical"}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis"},
         "randomness": {"bit_budget": 0}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis"}, "faults": {"crash": 1.5}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis"}, "faults": {}},  # no-op model
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis"},
         "faults": {"loss": 0.1, "start_round": 0}},
        {"name": "x", "graph": {"family": "path", "sizes": [8]},
         "algorithm": {"task": "luby-mis"}, "seeds": {"count": 0}},
        {"name": "x", "experiments": {"names": []}},
        {"name": "x", "experiments": {"names": ["e01", "e01"]}},
        {"name": "x", "experiments": {"names": ["e01"],
                                      "profile": "medium"}},
        {"name": "x", "experiments": {"names": ["e01"]},
         "graph": {"family": "path", "sizes": [8]}},
    ])
    def test_bad_specs_fail_loudly(self, data):
        with pytest.raises(ConfigurationError):
            ScenarioSpec.from_dict(data)

    def test_loader_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            loads("- just\n- a list\n")

    def test_unknown_task_and_family_fail_at_compile(self):
        with pytest.raises(ConfigurationError):
            sweep_scenario("x", "no-such-task", "path", (8,)).compile()
        with pytest.raises(ConfigurationError):
            sweep_scenario("x", "luby-mis", "moebius", (8,)).compile()


class TestCompile:
    def test_plain_scenario_matches_handwritten_grid(self):
        spec = sweep_scenario("s", "luby-mis", "path", (8, 12), seed_count=2)
        assert spec.compile() == [
            TrialSpec.of("path", 8, 0), TrialSpec.of("path", 8, 1),
            TrialSpec.of("path", 12, 0), TrialSpec.of("path", 12, 1)]

    def test_optional_sections_become_spec_params(self):
        trial = _rich_scenario().compile()[0]
        assert trial.param("ids") == "adversarial"
        assert trial.param("bit_budget") == 4096
        assert trial.param("fault_crash") == 0.1
        assert trial.param("fault_loss") == 0.2
        assert trial.param("fault_seed") == 9
        assert trial.param("fault_start") == 2
        assert trial.param("max_rounds") == 500
        assert trial.seed == 3

    def test_experiments_scenario_has_no_grid(self):
        spec = load_named("paper-quick")
        assert spec.kind == "experiments"
        with pytest.raises(ConfigurationError):
            spec.compile()

    def test_scaled_clamps(self):
        spec = load_named("crash-midround").scaled(max_size=16, max_count=1)
        assert spec.graph.sizes == (16,)
        assert spec.seeds.count == 1

    def test_experiment_plans_compile(self):
        for name in SCENARIO_PLANS:
            grids = [s.compile() for s in scenario_plan(name, quick=True,
                                                        seed=1)]
            assert grids and all(grids), name

    def test_unknown_plan(self):
        with pytest.raises(ConfigurationError):
            scenario_plan("e99")


class TestLoader:
    def test_library_is_complete(self):
        assert set(available()) >= {
            "paper-quick", "paper-full", "adversarial-ids", "crash-midround",
            "lossy-congest", "edge-churn", "lopsided-degree",
            "cliques-stress"}

    def test_unknown_name_lists_library(self):
        with pytest.raises(ConfigurationError, match="library scenarios"):
            load_named("no-such-scenario")

    def test_from_arg_accepts_paths(self, tmp_path):
        path = tmp_path / "mine.yaml"
        path.write_text(dumps(sweep_scenario("mine", "luby-mis", "path",
                                             (8,))))
        assert scenario_from_arg(str(path)).name == "mine"
        with pytest.raises(ConfigurationError):
            scenario_from_arg(str(tmp_path / "absent.yaml"))


class TestRegistry:
    def test_reregistering_same_binding_is_idempotent(self):
        fn, free = resolve_task("luby-mis")
        register_task("luby-mis", fn, free)

    def test_conflicting_binding_rejected(self):
        with pytest.raises(ConfigurationError):
            register_task("luby-mis", lambda spec: None)

    def test_experiment_tasks_resolve_lazily(self):
        fn, free = resolve_task("e03")
        assert callable(fn) and free  # e03's family is the regime name

    def test_unknown_task(self):
        with pytest.raises(ConfigurationError, match="registered tasks"):
            resolve_task("no-such-task")


class TestRoundFaultPlan:
    @pytest.mark.parametrize("kwargs", [
        dict(crash=1.5), dict(loss=-0.1), dict(churn=2.0),
        dict(crash=0.1, start_round=0)])
    def test_bad_rates_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RoundFaultPlan(seed=1, **kwargs)

    def test_inactive_plan_is_byte_identical_to_none(self):
        g = assign(make("cycle", 16), "random", seed=2)
        clean = luby_mis(g, IndependentSource(seed=2))
        inert = luby_mis(g, IndependentSource(seed=2),
                         faults=RoundFaultPlan(seed=1))
        assert inert.outputs == clean.outputs
        assert inert.report == clean.report

    def test_crashes_are_deterministic_and_visible(self):
        g = assign(make("cycle", 16), "random", seed=2)
        plan = RoundFaultPlan(seed=7, crash=0.4)
        first = luby_mis(g, IndependentSource(seed=2), faults=plan)
        second = luby_mis(g, IndependentSource(seed=2), faults=plan)
        assert first.outputs == second.outputs
        assert first.report == second.report
        clean = luby_mis(g, IndependentSource(seed=2))
        assert first.outputs != clean.outputs

    def test_array_engine_rejects_faults(self):
        g = assign(make("cycle", 12), "random", seed=2)
        with pytest.raises(ConfigurationError, match="array"):
            luby_mis(g, IndependentSource(seed=2), engine="array",
                     faults=RoundFaultPlan(seed=1, loss=0.5))

    def test_trial_task_reports_adversarial_failure_as_data(self):
        spec = TrialSpec.of("path", 12, 1, bit_budget=8)
        result = resolve_task("luby-mis")[0](spec)
        assert not result.ok
        assert result.data == {"failure": "RandomnessExhausted"}


class TestGeneratorValidation:
    @pytest.mark.parametrize("call", [
        lambda: gnp(0, 0.5), lambda: gnp(5, 1.5),
        lambda: random_regular(4, 0), lambda: random_regular(3, 3),
        lambda: cluster_of_cliques(2, 1), lambda: cluster_of_cliques(0, 4),
        lambda: dumbbell(1, 2), lambda: dumbbell(3, 0),
        lambda: lopsided(1), lambda: lopsided(10, hubs=10)])
    def test_degenerate_inputs_rejected(self, call):
        with pytest.raises(ConfigurationError):
            call()

    @pytest.mark.parametrize("family", ["dumbbell", "lopsided"])
    def test_new_families_registered(self, family):
        g = make(family, 24, seed=1)
        assert g.number_of_nodes() >= 20
        assert family in FAMILIES


class TestLibraryEndToEnd:
    @pytest.mark.parametrize("name", [
        "adversarial-ids", "crash-midround", "lossy-congest", "edge-churn",
        "lopsided-degree", "cliques-stress"])
    def test_sweep_scenarios_run_tiny(self, name):
        spec = load_named(name).scaled(max_size=16, max_count=1)
        results = spec.run()
        assert len(results) == len(spec.compile())
        assert all(isinstance(r, TrialResult) for r in results)
        again = spec.run()
        assert [(r.ok, r.data) for r in again] == \
               [(r.ok, r.data) for r in results]

    @pytest.mark.parametrize("name", ["adversarial-ids", "lopsided-degree",
                                      "cliques-stress"])
    def test_fault_free_scenarios_pass_their_checker(self, name):
        spec = load_named(name).scaled(max_size=16, max_count=1)
        assert all(r.ok for r in spec.run())

    def test_table_carries_digest(self):
        spec = load_named("cliques-stress").scaled(max_size=16, max_count=1)
        rendered = scenario_table(spec, spec.run()).render()
        assert spec.digest() in rendered


class TestScenarioUnits:
    def test_units_round_trip_through_json_and_store(self, tmp_path):
        spec = sweep_scenario("units", "luby-mis", "path", (8, 12),
                              seed_count=2)
        units = scenario_units(spec, 2)
        assert [u.index for u in units] == [0, 1]
        direct = spec.run()
        with TrialStore(str(tmp_path / "store")) as store:
            for unit in units:
                execute_experiment_unit(unit, store, lambda *_: None)
            assert len(store) == len(direct)
            replayed = spec.run(store=store)
        assert [(r.spec, r.ok, r.data) for r in replayed] == \
               [(r.spec, r.ok, r.data) for r in direct]

    def test_experiments_scenarios_cannot_become_units(self):
        with pytest.raises(ConfigurationError):
            scenario_units(load_named("paper-quick"), 2)


class TestCLI:
    def test_scenario_flag_runs_a_file(self, tmp_path, capsys):
        from repro.analysis.cli import main

        path = tmp_path / "tiny.yaml"
        path.write_text(dumps(sweep_scenario("tiny", "luby-mis", "path",
                                             (8,))))
        assert main(["--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Scenario tiny" in out

    @pytest.mark.parametrize("argv", [
        ["--scenario", "paper-quick", "--seed", "2"],
        ["--scenario", "paper-quick", "--full"],
        ["--scenario", "paper-quick", "e01"],
        ["--scenario", "paper-quick", "--worker", "http://x:1"]])
    def test_scenario_conflicts_exit_2(self, argv):
        from repro.analysis.cli import main

        assert main(argv) == 2
