"""Sinkless orientation and the Lemma 4.1 / Theorem 4.3 machinery."""

import math

import pytest

from repro.core.derandomization import (
    exhaustive_derandomize,
    family_size_bound,
    lemma41_error_threshold,
    lie_about_n,
    seeds_to_failure_curve,
    theorem43_deterministic_time,
    theorem46_N,
)
from repro.core.sinkless import (
    deterministic_orientation,
    is_sinkless,
    randomized_orientation,
    sinks,
)
from repro.core.splitting import random_instance
from repro.errors import ConfigurationError, DerandomizationFailure
from repro.graphs import assign, complete_tree, random_regular
from repro.randomness import IndependentSource


class TestSinkless:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_deterministic_valid_on_regular(self, seed):
        g = assign(random_regular(30, 3, seed=seed), "random", seed=seed)
        orientation, report = deterministic_orientation(g)
        assert is_sinkless(g, orientation)

    def test_deterministic_on_dense(self, dense40):
        orientation, _ = deterministic_orientation(dense40)
        assert is_sinkless(dense40, orientation)

    def test_path_has_no_constrained_nodes(self, path9):
        orientation, _ = deterministic_orientation(path9)
        assert is_sinkless(path9, orientation)  # vacuous: all degrees < 3

    def test_tree_with_many_branching_nodes_fails(self):
        # A complete binary tree of height 2: 3 internal nodes of degree
        # >= 3 but the leaves cannot serve them all... actually Hall may
        # hold; use a star of degree-3 centers sharing leaves: K1,3 with
        # each leaf also degree-1. Simplest guaranteed failure: two
        # degree-3 nodes joined by all three edges is a multigraph, so
        # use the 3-spider: center degree 3, legs length 1 — center can
        # be served. Instead: complete_tree(3, 1) has ONE constrained
        # node; fine. A genuinely unservable case is a tree where
        # constrained nodes outnumber edges not incident to leaves...
        # K1,3 subdivided has no constrained sink issue either. Verify
        # instead that a satisfiable tree is handled.
        g = assign(complete_tree(3, 2), "random", seed=1)
        orientation, _ = deterministic_orientation(g)
        assert is_sinkless(g, orientation)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_randomized_converges_and_validates(self, seed):
        g = assign(random_regular(48, 3, seed=seed), "random", seed=seed)
        orientation, report, extra = randomized_orientation(
            g, IndependentSource(seed=100 + seed))
        assert orientation is not None
        assert is_sinkless(g, orientation)
        assert extra["fixup_rounds"] == report.rounds
        assert extra["sink_trajectory"][-1] == 0

    def test_sink_trajectory_monotone_start(self):
        g = assign(random_regular(60, 3, seed=9), "random", seed=9)
        _o, _r, extra = randomized_orientation(g, IndependentSource(seed=9))
        trajectory = extra["sink_trajectory"]
        assert trajectory[0] >= trajectory[-1]

    def test_sinks_helper(self):
        g = assign(random_regular(12, 3, seed=1), "random", seed=1)
        # Orient everything into node 0's direction is messy; instead:
        # all edges from high to low index — node with max index has all
        # out; node 0 has all in, so it is a sink.
        orientation = {}
        for u, v in g.edges():
            a, b = (u, v) if u < v else (v, u)
            orientation[(a, b)] = (b, a)  # high -> low
        assert 0 in sinks(g, orientation)

    def test_is_sinkless_rejects_partial_orientation(self, dense40):
        orientation, _ = deterministic_orientation(dense40)
        orientation.popitem()
        assert not is_sinkless(dense40, orientation)


class TestExhaustiveDerandomization:
    @staticmethod
    def _run(inst, shared):
        coloring = {x: shared.global_bit(x % shared.seed_bits)
                    for x in inst.v_side}
        return inst.is_satisfied(coloring)

    def test_finds_good_seed(self):
        instances = [random_instance(8, 16, 8, seed=s) for s in range(5)]
        result = exhaustive_derandomize(self._run, instances, seed_bits=8)
        assert len(result.good_seed) == 8
        assert result.instances == 5
        # Replaying the good seed must succeed everywhere.
        from repro.randomness import SharedRandomness
        shared = SharedRandomness(8, explicit_bits=result.good_seed)
        assert all(self._run(inst, shared) for inst in instances)

    def test_failure_when_error_too_large(self):
        # With 1 shared bit, all of V gets one color: guaranteed failure.
        instances = [random_instance(4, 8, 4, seed=s) for s in range(3)]
        with pytest.raises(DerandomizationFailure):
            exhaustive_derandomize(self._run, instances, seed_bits=1)

    def test_failure_curve(self):
        instances = [random_instance(8, 16, 8, seed=s) for s in range(4)]
        result = exhaustive_derandomize(self._run, instances, seed_bits=6)
        curve = seeds_to_failure_curve(result)
        assert sum(curve.values()) == 64
        assert curve.get(0, 0) >= 1

    def test_stop_early(self):
        instances = [random_instance(8, 16, 8, seed=s) for s in range(3)]
        result = exhaustive_derandomize(self._run, instances, seed_bits=8,
                                        stop_early=True)
        assert result.seeds_tried <= 256

    def test_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            exhaustive_derandomize(self._run, [], seed_bits=4)
        with pytest.raises(ConfigurationError):
            exhaustive_derandomize(
                self._run, [random_instance(4, 8, 4, seed=1)], seed_bits=30)


class TestLieAboutN:
    def test_wrapper_passes_claimed_n(self, gnp60):
        def algorithm(graph, claimed_n, seed):
            return claimed_n == 1000, None

        ok, _ = lie_about_n(algorithm, gnp60, claimed_n=1000)
        assert ok

    def test_cannot_understate(self, gnp60):
        with pytest.raises(ConfigurationError):
            lie_about_n(lambda g, n, s: (True, None), gnp60, claimed_n=10)

    def test_engine_integration(self, gnp60):
        """Lying through the engine: nodes' ctx.n is the claimed N."""
        from repro.sim import NodeProgram, run_program

        class ReportN(NodeProgram):
            def init(self, ctx):
                ctx.finish(ctx.n)
                return {}

        result = run_program(gnp60, ReportN, n_override=6000)
        assert set(result.outputs.values()) == {6000}


class TestClosedForms:
    def test_family_size_grows_quadratically(self):
        assert family_size_bound(20) > family_size_bound(10) * 2
        # Dominated by the n^2/2 term for large n.
        assert abs(family_size_bound(1000) / (1000 * 999 / 2) - 1) < 0.1

    def test_lemma41_threshold_is_negative_log(self):
        assert lemma41_error_threshold(50) == -family_size_bound(50)

    def test_theorem43_time_decreases_in_beta(self):
        assert theorem43_deterministic_time(10 ** 6, 3) > \
            theorem43_deterministic_time(10 ** 6, 8)

    def test_theorem43_validates_beta(self):
        with pytest.raises(ConfigurationError):
            theorem43_deterministic_time(100, 2.0)

    def test_theorem46_N_polylog_friendly(self):
        # log N = (2 log n)^(1/eps): for eps=1/2 that is (2 log n)^2.
        n = 1024
        log_N = theorem46_N(n, 0.5)
        assert log_N == pytest.approx((2 * math.log2(n)) ** 2)

    def test_theorem46_validates_epsilon(self):
        with pytest.raises(ConfigurationError):
            theorem46_N(100, 0.0)
        with pytest.raises(ConfigurationError):
            theorem46_N(100, 1.5)
