"""Cross-module pipelines: end-to-end flows the paper composes."""


from repro.checkers import (
    ColoringChecker,
    DecompositionChecker,
    MISChecker,
    decomposition_outputs,
)
from repro.core.coloring import coloring_via_decomposition, is_proper_coloring
from repro.core.decomposition import (
    elkin_neiman,
    shared_randomness_decomposition,
    shattering_decomposition,
    sparse_bits_decomposition,
    sparse_bits_strong_decomposition,
)
from repro.core.mis import is_valid_mis, luby_mis, mis_via_decomposition, slocal_greedy_mis
from repro.graphs import assign, make
from repro.randomness import IndependentSource, SparseRandomness


class TestSparseToConsumers:
    """Theorem 3.1/3.7 -> decomposition -> MIS/coloring -> checkers."""

    def test_full_pipeline_weak(self, grid36):
        source = SparseRandomness.for_graph(grid36, h=1, seed=3)
        dec, _r, _e = sparse_bits_decomposition(
            grid36, source, spacing=6, strict=False)
        flags, _ = mis_via_decomposition(grid36, dec)
        assert is_valid_mis(grid36, flags)
        assert MISChecker().check(grid36, flags).ok

    def test_full_pipeline_strong(self, grid36):
        source = SparseRandomness.for_graph(grid36, h=1, seed=4)
        dec, _r, _e = sparse_bits_strong_decomposition(
            grid36, source, spacing=6, strict=False)
        colors, _ = coloring_via_decomposition(grid36, dec)
        palette = grid36.max_degree() + 1
        assert is_proper_coloring(grid36, colors, palette)
        assert ColoringChecker(palette).check(grid36, colors).ok

    def test_the_entire_randomness_is_sparse(self, grid36):
        """Nothing in the pipeline may touch a non-holder bit."""
        source = SparseRandomness.for_graph(grid36, h=2, seed=5)
        sparse_bits_decomposition(grid36, source, spacing=8, strict=False)
        assert set(source.nodes_touched()) <= source.holders
        assert source.bits_consumed <= len(source.holders)


class TestSharedToConsumers:
    def test_shared_decomposition_feeds_coloring(self, gnp60):
        dec, _r, extra = shared_randomness_decomposition(
            gnp60, seed=6, strict=False)
        colors, _ = coloring_via_decomposition(gnp60, dec)
        assert is_proper_coloring(gnp60, colors, gnp60.max_degree() + 1)

    def test_decomposition_checker_accepts_shared_output(self, gnp60):
        dec, _r, _e = shared_randomness_decomposition(
            gnp60, seed=7, strict=False)
        checker = DecompositionChecker(
            max_colors=dec.num_colors(),
            max_diameter=dec.max_weak_diameter(gnp60))
        assert checker.check(gnp60, decomposition_outputs(dec)).ok


class TestShatteringToConsumers:
    def test_shattered_decomposition_is_consumable(self):
        g = assign(make("grid", 100, seed=3), "random", seed=3)
        dec, _r, extra = shattering_decomposition(
            g, IndependentSource(seed=77), en_phases=3, cap=6)
        flags, _ = mis_via_decomposition(g, dec)
        assert is_valid_mis(g, flags)


class TestCrossAlgorithmConsistency:
    def test_luby_and_slocal_both_maximal(self, gnp60):
        luby = luby_mis(gnp60, IndependentSource(seed=8)).outputs
        greedy = slocal_greedy_mis(gnp60).outputs
        assert is_valid_mis(gnp60, luby)
        assert is_valid_mis(gnp60, greedy)
        # Different algorithms, same invariants; sizes are comparable.
        assert abs(sum(luby.values()) - sum(greedy.values())) <= gnp60.n // 2

    def test_en_vs_shared_vs_deterministic_quality(self, gnp60):
        from repro.core.decomposition import deterministic_decomposition
        results = {}
        dec, _r, _e = elkin_neiman(gnp60, IndependentSource(seed=9))
        results["en"] = dec
        dec, _r, _e = shared_randomness_decomposition(
            gnp60, seed=10, strict=False)
        results["shared"] = dec
        dec, _r = deterministic_decomposition(gnp60)
        results["det"] = dec
        for name, dec in results.items():
            assert dec.violations(gnp60) == [], name


class TestReproducibilityEndToEnd:
    def test_everything_is_a_function_of_seeds(self):
        """One seed tuple -> byte-identical pipeline outputs."""

        def pipeline(seed):
            g = assign(make("gnp-sparse", 50, seed=seed), "random", seed=seed)
            dec, _r, _e = elkin_neiman(g, IndependentSource(seed=seed + 1))
            flags, _ = mis_via_decomposition(g, dec)
            colors, _ = coloring_via_decomposition(g, dec)
            return dec.cluster_of, flags, colors

        assert pipeline(4) == pipeline(4)
        assert pipeline(4) != pipeline(5)
