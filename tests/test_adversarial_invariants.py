"""Adversarial-input invariants: properties that hold for ANY randomness.

The Elkin–Neiman gap rule (m1 - m2 > 1) guarantees, *deterministically*,
that same-phase clusters are connected and pairwise non-adjacent — the
probability only enters for progress, never for validity. These tests
feed hypothesis-chosen (arbitrary, adversarial) radii into the phase
loop and assert the structural invariants directly. Failure injection
for the model/ randomness enforcement lives here too.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.decomposition.elkin_neiman import en_phases_on_nx
from repro.core.decomposition.shared_congest import phase_epoch_decomposition
from repro.errors import (
    BandwidthExceeded,
    ModelViolation,
    RandomnessExhausted,
)
from repro.graphs import make
from repro.randomness import IndependentSource, SparseRandomness
from repro.randomness.pooled import PooledBits


def _clusters_of(assignment):
    clusters = {}
    for node, key in assignment.items():
        clusters.setdefault(key, set()).add(node)
    return clusters


class TestGapRuleIsAdversarialProof:
    @given(data=st.data(), n=st.integers(6, 24), seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_same_phase_clusters_never_adjacent(self, data, n, seed):
        graph = make("gnp-dense", n, seed=seed)
        radii_table = {}

        def draw(v, phase):
            key = (v, phase)
            if key not in radii_table:
                radii_table[key] = data.draw(
                    st.integers(0, 12), label=f"r{key}")
            return radii_table[key]

        assignment, _remaining = en_phases_on_nx(graph, draw, phases=3, cap=12)
        clusters = _clusters_of(assignment)
        keys = list(clusters)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                if a[0] != b[0]:
                    continue  # different phases may touch
                for x in clusters[a]:
                    for y in clusters[b]:
                        assert not graph.has_edge(x, y), (
                            f"same-phase clusters {a} and {b} adjacent "
                            f"via ({x},{y}) with radii {radii_table}"
                        )

    @given(data=st.data(), n=st.integers(6, 24), seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_clusters_always_connected(self, data, n, seed):
        graph = make("gnp-sparse", n, seed=seed)

        def draw(v, phase):
            return data.draw(st.integers(0, 10), label=f"r{v},{phase}")

        assignment, _remaining = en_phases_on_nx(graph, draw, phases=2, cap=10)
        for members in _clusters_of(assignment).values():
            assert nx.is_connected(graph.subgraph(members))

    @given(data=st.data())
    @settings(max_examples=20)
    def test_cluster_radius_bounded_by_center_shift(self, data):
        graph = make("grid", 25, seed=1)
        radii = {v: data.draw(st.integers(0, 8), label=f"r{v}")
                 for v in graph.nodes()}
        assignment, _remaining = en_phases_on_nx(
            graph, lambda v, p: radii[v], phases=1, cap=8)
        for (phase, center), members in _clusters_of(assignment).items():
            sub = graph.subgraph(members)
            lengths = nx.single_source_shortest_path_length(sub, center)
            assert max(lengths.values()) <= radii[center]


class TestFailureInjection:
    def test_congest_violation_surfaces_from_engine(self, path9):
        """A program over budget fails loudly, not silently."""
        from repro.sim import NodeProgram, SyncEngine

        class TooBig(NodeProgram):
            def init(self, ctx):
                return {NodeProgram.BROADCAST: tuple(range(500))}

            def step(self, ctx, round_index, inbox):
                ctx.finish(None)
                return {}

        engine = SyncEngine(path9, lambda _v: TooBig(), model="CONGEST",
                            bandwidth_bits=64)
        with pytest.raises(BandwidthExceeded):
            engine.run()

    def test_sparse_model_blocks_cheating_algorithms(self, grid36):
        """An algorithm reading non-holder bits is stopped by the source."""
        source = SparseRandomness.for_graph(grid36, h=2, seed=1)
        outsider = next(v for v in grid36.nodes()
                        if v not in source.holders)
        with pytest.raises(ModelViolation):
            source.bit(outsider, 0)

    def test_pool_exhaustion_is_loud(self):
        pools = PooledBits({"c": [1, 0, 1]})
        pools.bits("c", 3)
        with pytest.raises(RandomnessExhausted):
            pools.bit("c", 3)

    def test_budgeted_source_stops_overdraw_mid_algorithm(self, cycle12):
        """An EN run on a tiny budget fails with the budget error."""
        from repro.core.decomposition import elkin_neiman

        source = IndependentSource(seed=1, bit_budget=5)
        with pytest.raises(RandomnessExhausted):
            elkin_neiman(cycle12, source)

    def test_phase_epoch_rejects_bad_parameters(self, cycle12):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            phase_epoch_decomposition(
                cycle12, lambda v, p, e, t: False, lambda v, p, e: 1,
                max_phases=0, epochs=2, cap=2)

    def test_engine_detects_runaway_algorithms(self, path9):
        from repro.sim import NodeProgram, run_program

        class Spinner(NodeProgram):
            def step(self, ctx, round_index, inbox):
                return {}

        with pytest.raises(ModelViolation):
            run_program(path9, Spinner, max_rounds=5)
