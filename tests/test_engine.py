"""The synchronous engine: delivery, enforcement, lying about n."""

import pytest

from repro.errors import BandwidthExceeded, ConfigurationError, ModelViolation
from repro.randomness import IndependentSource
from repro.sim import CONGEST, LOCAL, NodeProgram, SyncEngine, run_program
from repro.sim.messages import congest_limit, message_bits


class Echo(NodeProgram):
    """Sends its UID once; finishes with the sorted UIDs it heard."""

    def init(self, ctx):
        ctx.state["heard"] = []
        return {NodeProgram.BROADCAST: ctx.uid}

    def step(self, ctx, round_index, inbox):
        ctx.state["heard"].extend(inbox.values())
        if round_index >= 1:
            ctx.finish(tuple(sorted(ctx.state["heard"])))
        return {}


class TestDelivery:
    def test_messages_arrive_next_round(self, cycle12):
        result = run_program(cycle12, Echo)
        for v in cycle12.nodes():
            expected = tuple(sorted(cycle12.uid(u)
                                    for u in cycle12.neighbors(v)))
            assert result.outputs[v] == expected

    def test_round_and_message_counts(self, cycle12):
        result = run_program(cycle12, Echo)
        assert result.report.rounds == 1
        assert result.report.messages == 12 * 2
        assert result.report.total_bits > 0

    def test_unicast_targets(self, path9):
        class SendRight(NodeProgram):
            def init(self, ctx):
                right = [u for u in ctx.neighbors if u > ctx.v]
                return {u: ctx.uid for u in right}

            def step(self, ctx, round_index, inbox):
                ctx.finish(sorted(inbox.values()))
                return {}

        result = run_program(path9, SendRight)
        assert result.outputs[0] == []
        for v in range(1, 9):
            assert result.outputs[v] == [path9.uid(v - 1)]


class TestEnforcement:
    def test_non_neighbor_send_rejected(self, path9):
        class Cheat(NodeProgram):
            def init(self, ctx):
                return {}

            def step(self, ctx, round_index, inbox):
                far = (ctx.v + 4) % 9
                return {far: 1}

        with pytest.raises(ModelViolation):
            run_program(path9, Cheat)

    def test_congest_bandwidth_enforced(self, path9):
        class Flood(NodeProgram):
            def init(self, ctx):
                return {NodeProgram.BROADCAST: "x" * 5000}

            def step(self, ctx, round_index, inbox):
                ctx.finish(None)
                return {}

        with pytest.raises(BandwidthExceeded):
            run_program(path9, Flood, model=CONGEST)

    def test_local_model_allows_big_messages(self, path9):
        class Flood(NodeProgram):
            def init(self, ctx):
                return {NodeProgram.BROADCAST: "x" * 5000}

            def step(self, ctx, round_index, inbox):
                ctx.finish(None)
                return {}

        result = run_program(path9, Flood, model=LOCAL)
        assert result.report.max_message_bits > 1000

    def test_max_rounds_guard(self, path9):
        class Forever(NodeProgram):
            def step(self, ctx, round_index, inbox):
                return {}

        with pytest.raises(ModelViolation):
            run_program(path9, Forever, max_rounds=10)

    def test_uniform_algorithm_cannot_read_n(self, path9):
        class PeekN(NodeProgram):
            def init(self, ctx):
                ctx.finish(ctx.n)
                return {}

        with pytest.raises(ModelViolation):
            run_program(path9, PeekN, uniform=True)

    def test_randomness_requires_source(self, path9):
        class NeedsBits(NodeProgram):
            def init(self, ctx):
                ctx.finish(ctx.rand_bit())
                return {}

        with pytest.raises(ModelViolation):
            run_program(path9, NeedsBits)

    def test_unknown_model_rejected(self, path9):
        with pytest.raises(ConfigurationError):
            SyncEngine(path9, lambda v: Echo(), model="QUANTUM")


class TestLieAboutN:
    def test_nodes_see_the_claimed_n(self, path9):
        class ReportN(NodeProgram):
            def init(self, ctx):
                ctx.finish(ctx.n)
                return {}

        result = run_program(path9, ReportN, n_override=1000)
        assert all(out == 1000 for out in result.outputs.values())

    def test_cannot_understate_n(self, path9):
        with pytest.raises(ConfigurationError):
            SyncEngine(path9, lambda v: Echo(), n_override=3)

    def test_bandwidth_scales_with_claimed_n(self, path9):
        small = SyncEngine(path9, lambda v: Echo())
        big = SyncEngine(path9, lambda v: Echo(), n_override=10 ** 6)
        assert big.bandwidth > small.bandwidth


class TestDeterminism:
    def test_same_seed_same_run(self, gnp60):
        class Coin(NodeProgram):
            def init(self, ctx):
                return {}

            def step(self, ctx, round_index, inbox):
                ctx.finish(tuple(ctx.rand_bits(8)))
                return {}

        r1 = run_program(gnp60, Coin, source=IndependentSource(seed=3))
        r2 = run_program(gnp60, Coin, source=IndependentSource(seed=3))
        assert r1.outputs == r2.outputs

    def test_randomness_bits_metered(self, path9):
        class Coin(NodeProgram):
            def init(self, ctx):
                return {}

            def step(self, ctx, round_index, inbox):
                ctx.finish(tuple(ctx.rand_bits(4)))
                return {}

        result = run_program(path9, Coin, source=IndependentSource(seed=1))
        assert result.report.randomness_bits == 9 * 4


class TestMessageBits:
    def test_payload_sizes(self):
        assert message_bits(None) == 1
        assert message_bits(True) == 1
        assert message_bits(0) == 2
        assert message_bits(255) == 9
        assert message_bits(1.5) == 64
        assert message_bits("ab") == 18
        assert message_bits((1, 2)) > message_bits(1) + message_bits(2)
        assert message_bits({"k": 1}) > 0
        assert message_bits(frozenset({3})) > 0

    def test_unencodable_payload(self):
        with pytest.raises(ModelViolation):
            message_bits(object())

    def test_congest_limit_logarithmic(self):
        assert congest_limit(2 ** 20) == 32 * 20
        assert congest_limit(16) < congest_limit(2 ** 20)
