"""Block-mode randomness: purity, interval-ledger parity, CSR BFS.

The PR that introduced counter-mode block generation and interval-based
metering must preserve the :class:`~repro.randomness.source.RandomSource`
contract exactly:

* a source is a pure function of ``(seed, node, index)`` — random access
  equals sequential access equals bulk access;
* the interval ledger reports the same counts as per-bit bookkeeping;
* ``bit_budget`` exhaustion raises at the same consumed-bit count;
* the bulk samplers consume exactly the bits their per-call forms would.

Plus the CSR-BFS ports of ``ball``/``weak_diameter``/holder selection,
checked against networkx ground truth.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import RandomnessExhausted
from repro.graphs import assign, make
from repro.randomness import (
    EpsilonBiasedSource,
    IndependentSource,
    IntervalSet,
    KWiseSource,
    SharedRandomness,
    SparseRandomness,
    covering_holders,
)
from repro.randomness.pooled import PooledBits
from repro.sim.batch.csr import CSRGraph, bfs_distances, nx_to_csr
from repro.sim.graph import DistributedGraph


def _sources():
    """One instance of every bounded/unbounded source under test."""
    return [
        IndependentSource(seed=3),
        SharedRandomness(512, seed=3),
        KWiseSource(4, num_nodes=8, bits_per_node=64, seed=3),
        EpsilonBiasedSource(num_nodes=8, bits_per_node=64, epsilon=0.05, seed=3),
        PooledBits({v: [(v * 7 + i) % 3 % 2 for i in range(64)]
                    for v in range(8)}),
    ]


class TestPurity:
    """Block-mode bits are a pure function of (seed, node, index)."""

    def test_random_access_equals_sequential(self):
        for source in _sources():
            twin = type(source).__name__
            seq = {(v, i): source.bit(v, i)
                   for v in range(8) for i in range(64)}
            # A fresh instance read in a scrambled order must agree.
            other = [s for s in _sources()
                     if type(s).__name__ == twin][0]
            rng = np.random.default_rng(1)
            order = [(v, i) for v in range(8) for i in range(64)]
            for j in rng.permutation(len(order)).tolist():
                v, i = order[j]
                assert other.bit(v, i) == seq[(v, i)], twin

    def test_bulk_equals_scalar(self):
        for source in _sources():
            name = type(source).__name__
            for v in range(8):
                block = source.bits_block(v, 64)
                assert block.dtype == np.uint8
                assert [source.bit(v, i) for i in range(64)] == \
                    block.tolist(), name

    def test_offset_blocks_are_views_of_the_same_stream(self):
        source = IndependentSource(seed=9)
        whole = source.bits_block("n", 600)  # spans >1 PRF block
        for start, count in ((0, 13), (500, 100), (511, 2), (37, 512)):
            assert source.bits_block("n", count, start).tolist() == \
                whole[start:start + count].tolist()

    def test_same_seed_same_stream_different_seed_differs(self):
        a = IndependentSource(seed=5)
        b = IndependentSource(seed=5)
        c = IndependentSource(seed=6)
        assert a.bits(0, 256) == b.bits(0, 256)
        assert a.bits(0, 256) != c.bits(0, 256)


class _PerBitReference:
    """The old dict-per-bit ledger, reimplemented as ground truth."""

    def __init__(self):
        self.served = set()

    def consume(self, node, start, end):
        for i in range(start, end):
            self.served.add((node, i))

    def total(self):
        return len(self.served)

    def by_node(self, node):
        return sum(1 for (v, _i) in self.served if v == node)


@given(st.lists(
    st.tuples(st.integers(0, 3),          # node
              st.integers(0, 200),        # offset
              st.integers(1, 40)),        # count
    min_size=1, max_size=30))
def test_interval_ledger_matches_per_bit_ledger(ops):
    """Arbitrary overlapping reads: interval counts == per-bit counts."""
    source = IndependentSource(seed=11)
    reference = _PerBitReference()
    for node, offset, count in ops:
        source.bits_block(node, count, offset)
        reference.consume(node, offset, offset + count)
    assert source.bits_consumed == reference.total()
    for node in range(4):
        assert source.bits_consumed_by(node) == reference.by_node(node)
    assert set(source.nodes_touched()) == {v for v, _ in reference.served}


@given(st.lists(st.tuples(st.integers(0, 60), st.integers(1, 20)),
                min_size=1, max_size=20))
def test_interval_set_matches_set_semantics(ranges):
    ledger = IntervalSet()
    model = set()
    for start, length in ranges:
        added = ledger.add(start, start + length)
        fresh = set(range(start, start + length)) - model
        assert added == len(fresh)
        model |= fresh
        assert ledger.total == len(model)
    for start, length in ranges:
        assert ledger.missing(start, start + length) == []
    # Gaps reported by missing() are exactly the uncovered integers.
    gaps = ledger.missing(0, 100)
    uncovered = {i for i in range(100) if i not in model}
    assert {i for s, e in gaps for i in range(s, e)} == uncovered


class TestBudget:
    def test_bulk_exhaustion_raises_at_same_count(self):
        # Per-bit reference: budget 10, reads of 4+4 fine, next 4 raises
        # after serving 2 — the ledger must stop at exactly 10.
        source = IndependentSource(seed=1, bit_budget=10)
        source.bits_block("a", 4)
        source.bits_block("a", 4, 4)
        with pytest.raises(RandomnessExhausted):
            source.bits_block("a", 4, 8)
        assert source.bits_consumed == 10
        assert source.bits_consumed_by("a") == 10

    def test_exhaustion_message_names_first_unserved_index(self):
        source = IndependentSource(seed=1, bit_budget=6)
        with pytest.raises(RandomnessExhausted, match="index 6"):
            source.bits_block("a", 9)
        assert source.bits_consumed == 6

    def test_rereads_are_free_under_budget(self):
        source = IndependentSource(seed=1, bit_budget=8)
        first = source.bits("a", 8)
        assert source.bits("a", 8) == first       # full bulk re-read
        assert source.bit("a", 3) == first[3]     # scalar re-read
        assert source.bits_consumed == 8
        with pytest.raises(RandomnessExhausted):
            source.bit("a", 8)

    def test_partially_cached_bulk_read_counts_only_fresh_bits(self):
        source = IndependentSource(seed=1, bit_budget=12)
        source.bits_block("a", 8)
        source.bits_block("a", 8, 4)  # 4 cached + 4 fresh
        assert source.bits_consumed == 12
        with pytest.raises(RandomnessExhausted):
            source.bit("a", 12)


class TestErrorPathParity:
    def test_bits_block_past_pool_end_meters_valid_prefix(self):
        # Per-bit reference: bit(0..3) serve, bit(4) raises -> 4 consumed.
        bulk = PooledBits({"n": [1, 0, 1, 1]})
        with pytest.raises(RandomnessExhausted):
            bulk.bits_block("n", 6)
        assert bulk.bits_consumed == 4
        assert bulk.bits_consumed_by("n") == 4

    def test_bits_block_past_shared_end_meters_valid_prefix(self):
        shared = SharedRandomness(8, seed=1)
        with pytest.raises(RandomnessExhausted):
            shared.global_bits(12)
        assert shared.bits_consumed == 8

    def test_sized_cache_does_not_alias_bool_and_int_payloads(self):
        # True == 1 and hash(True) == hash(1), but they encode to
        # different message sizes; the engines must agree bit-for-bit.
        from repro.sim import CONGEST, FastEngine, SyncEngine
        from repro.sim.node import NodeProgram

        class AliasingProgram(NodeProgram):
            def init(self, ctx):
                return {u: 1 for u in ctx.neighbors}

            def step(self, ctx, round_index, inbox):
                if round_index == 1:
                    return {u: True for u in ctx.neighbors}
                ctx.finish(sorted(inbox.values()))
                return {}

        g = assign(make("cycle", 8), "random", seed=1)
        fast = FastEngine(g, lambda _v: AliasingProgram(),
                          model=CONGEST).run()
        sync = SyncEngine(g, lambda _v: AliasingProgram(),
                          model=CONGEST).run()
        assert fast.outputs == sync.outputs
        assert fast.report.total_bits == sync.report.total_bits
        assert fast.report.max_message_bits == sync.report.max_message_bits


class TestBulkSamplers:
    @given(st.integers(2, 200), st.integers(1, 30), st.integers(0, 50))
    def test_uniform_ints_equals_sequential(self, bound, count, offset):
        bulk = IndependentSource(seed=21)
        seq = IndependentSource(seed=21)
        values, used = bulk.uniform_ints("n", bound, count, offset)
        expected = []
        cursor = offset
        for _ in range(count):
            value, step = seq.uniform_int("n", bound, cursor)
            cursor += step
            expected.append(value)
        assert values.tolist() == expected
        assert used == cursor - offset
        assert bulk.bits_consumed == seq.bits_consumed
        assert all(0 <= v < bound for v in values.tolist())

    def test_uniform_ints_on_bounded_source(self):
        shared = SharedRandomness(400, seed=4)
        ref = SharedRandomness(400, seed=4)
        values, used = shared.uniform_ints("__shared__", 5, 20)
        cursor = 0
        for v in values.tolist():
            expected, step = ref.uniform_int("__shared__", 5, cursor)
            assert v == expected
            cursor += step
        assert used == cursor
        assert shared.bits_consumed == ref.bits_consumed

    @given(st.integers(1, 40), st.integers(0, 100))
    def test_geometric_block_equals_per_bit(self, cap, offset):
        fast = IndependentSource(seed=33)
        slow = IndependentSource(seed=33)
        value, used = fast.geometric("g", cap, offset)
        # Per-bit reference walk.
        expected_used = 0
        expected = cap
        for k in range(1, cap + 1):
            flip = slow.bit("g", offset + expected_used)
            expected_used += 1
            if flip == 0:
                expected = k
                break
        assert (value, used) == (expected, expected_used)
        assert fast.bits_consumed == slow.bits_consumed == expected_used

    def test_geometrics_matches_scalar_calls(self):
        bulk = IndependentSource(seed=8)
        seq = IndependentSource(seed=8)
        nodes = list(range(20))
        values, used = bulk.geometrics(nodes, cap=12, offset=36)
        for i, v in enumerate(nodes):
            value, step = seq.geometric(v, 12, 36)
            assert (values[i], used[i]) == (value, step)
        assert bulk.bits_consumed == seq.bits_consumed

    def test_geometric_near_end_of_bounded_stream(self):
        # cap reaches past the pool's end but the draw ends before it:
        # must succeed, exactly like bit-at-a-time flipping.
        pool = PooledBits({"c": [1, 1, 0, 1]})
        value, used = pool.geometric("c", cap=10)
        assert (value, used) == (3, 3)
        pool2 = PooledBits({"c": [1, 1, 1, 1]})
        with pytest.raises(RandomnessExhausted):
            pool2.geometric("c", cap=10)


class TestCSRDistances:
    def _graphs(self):
        for family, seed in (("grid", 1), ("gnp-sparse", 2), ("tree", 3),
                             ("cliques", 4)):
            yield assign(make(family, 36, seed=seed), "random", seed=seed)
        # A disconnected graph exercises the -1 path.
        g = nx.Graph()
        g.add_edges_from([(0, 1), (1, 2), (3, 4)])
        g.add_node(5)
        yield DistributedGraph(g)

    def test_ball_matches_networkx(self):
        for g in self._graphs():
            for v in (0, g.n // 2, g.n - 1):
                for radius in (0, 1, 2, 5):
                    expected = nx.single_source_shortest_path_length(
                        g.nx, v, cutoff=radius)
                    assert g.ball(v, radius) == dict(expected)

    def test_distance_matches_networkx(self):
        for g in self._graphs():
            for u in (0, g.n - 1):
                for v in range(g.n):
                    try:
                        expected = nx.shortest_path_length(g.nx, u, v)
                    except nx.NetworkXNoPath:
                        expected = None
                    assert g.distance(u, v) == expected

    def test_weak_diameter_matches_pairwise_distances(self):
        g = assign(make("grid", 36, seed=5), "random", seed=5)
        members = [0, 7, 14, 30]
        expected = max(nx.shortest_path_length(g.nx, u, v)
                       for u in members for v in members)
        assert g.weak_diameter(members) == expected
        assert g.weak_diameter([3]) == 0

    def test_csr_graph_ball_agrees_with_distributed_graph(self):
        g = assign(make("gnp-sparse", 40, seed=9), "random", seed=9)
        csr = CSRGraph.from_graph(g)
        for v in (0, 17, 39):
            assert csr.ball(v, 3) == g.ball(v, 3)

    def test_bfs_distances_on_nx_labels(self):
        g = nx.relabel_nodes(nx.path_graph(6), {i: f"v{i}" for i in range(6)})
        offsets, indices, nodes = nx_to_csr(g)
        dist = bfs_distances(offsets, indices, nodes.index("v0"))
        assert dist.tolist() == [0, 1, 2, 3, 4, 5]

    def test_covering_holders_still_cover(self):
        g = assign(make("grid", 36, seed=2), "random", seed=2)
        for h in (1, 2, 3):
            holders = covering_holders(g, h, seed=7)
            source = SparseRandomness(holders, h, seed=7)
            assert source.verify_covering(g)
            # Pairwise spread: sparse style keeps holders > h apart.
            holder_list = sorted(holders)
            for i, a in enumerate(holder_list):
                for b in holder_list[i + 1:]:
                    assert g.distance(a, b) > h
