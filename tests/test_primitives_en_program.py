"""Engine primitives and the message-passing Elkin–Neiman program."""

import pytest

from repro.core.decomposition import elkin_neiman
from repro.core.decomposition.en_program import en_engine_decomposition
from repro.errors import ConfigurationError
from repro.randomness import IndependentSource
from repro.sim import CONGEST, SyncEngine
from repro.sim.messages import congest_limit
from repro.sim.primitives import (
    BFSTree,
    FloodMin,
    build_bfs_forest,
    convergecast_sum,
)

from helpers import family_graphs


class TestFloodMin:
    def test_learns_radius_ball_minimum(self, grid36):
        radius = 3
        result = SyncEngine(
            grid36, lambda _v: FloodMin(radius), model=CONGEST).run()
        for v in grid36.nodes():
            expected = min(grid36.uid(u) for u in grid36.ball(v, radius))
            assert result.outputs[v] == expected

    def test_radius_zero_is_self(self, path9):
        result = SyncEngine(path9, lambda _v: FloodMin(0)).run()
        assert all(result.outputs[v] == path9.uid(v) for v in path9.nodes())

    def test_takes_exactly_radius_rounds(self, path9):
        result = SyncEngine(path9, lambda _v: FloodMin(4)).run()
        assert result.report.rounds == 4

    def test_validates_radius(self):
        with pytest.raises(ConfigurationError):
            FloodMin(-1)


class TestBFSTree:
    def test_single_root_depths(self, grid36):
        result = build_bfs_forest(grid36, roots=[0])
        for v in grid36.nodes():
            root_uid, parent, depth = result.outputs[v]
            assert root_uid == grid36.uid(0)
            assert depth == grid36.distance(0, v)
            if v != 0:
                assert parent in grid36.neighbors(v)
                assert result.outputs[parent][2] == depth - 1

    def test_multi_root_nearest_or_smaller_uid(self, path9):
        result = build_bfs_forest(path9, roots=[0, 8])
        for v in path9.nodes():
            root_uid, _parent, depth = result.outputs[v]
            assert depth == min(path9.distance(0, v), path9.distance(8, v)) \
                or root_uid == min(path9.uid(0), path9.uid(8))

    def test_parent_pointers_form_forest(self, gnp60):
        result = build_bfs_forest(gnp60, roots=[0, 1])
        # Walking parents must terminate at a root.
        for v in gnp60.nodes():
            seen = set()
            cur = v
            while True:
                assert cur not in seen
                seen.add(cur)
                _root, parent, _depth = result.outputs[cur]
                if parent is None:
                    break
                cur = parent

    def test_validates_depth_bound(self):
        with pytest.raises(ConfigurationError):
            BFSTree([0], 0)


class TestConvergecast:
    def test_sums_match_cluster_sizes(self, grid36):
        result = build_bfs_forest(grid36, roots=[0, 35])
        totals, rounds = convergecast_sum(
            grid36, result.outputs, value_of=lambda v: 1)
        assert sum(totals.values()) == grid36.n
        assert rounds <= grid36.n

    def test_weighted_sum(self, path9):
        result = build_bfs_forest(path9, roots=[0])
        totals, _rounds = convergecast_sum(
            path9, result.outputs, value_of=lambda v: v)
        assert totals[path9.uid(0)] == sum(range(9))


class TestENEngineProgram:
    def test_valid_on_families(self):
        for name, g in family_graphs(36, seed=9):
            dec, result = en_engine_decomposition(
                g, IndependentSource(seed=13), strict=False)
            assert dec.violations(g) == [], name

    def test_congest_messages_within_limit(self, gnp60):
        _dec, result = en_engine_decomposition(
            gnp60, IndependentSource(seed=14), strict=False)
        assert result.report.max_message_bits <= congest_limit(gnp60.n)

    def test_measured_rounds_match_structure(self, cycle12):
        phases, cap = 6, 5
        _dec, result = en_engine_decomposition(
            cycle12, IndependentSource(seed=15), phases=phases, cap=cap,
            strict=False)
        assert result.report.rounds <= phases * (cap + 2) + 1

    def test_agrees_with_orchestrated_invariants(self, gnp60):
        """Engine and orchestrated EN satisfy the same bounds."""
        phases, cap = 30, 10
        dec_e, _res = en_engine_decomposition(
            gnp60, IndependentSource(seed=16), phases=phases, cap=cap,
            strict=False)
        dec_o, _r, _e = elkin_neiman(
            gnp60, IndependentSource(seed=16), phases=phases, cap=cap,
            finish="singletons")
        for dec in (dec_e, dec_o):
            assert dec.is_valid(gnp60)
            assert dec.num_colors() <= phases + gnp60.n
            assert dec.max_strong_diameter(gnp60) <= 2 * cap

    def test_strict_mode(self, cycle12):
        dec, result = en_engine_decomposition(
            cycle12, IndependentSource(seed=17), phases=1, cap=1,
            strict=True)
        if result.extra["unclustered"]:
            assert dec is None
