"""DistributedGraph: identifiers, topology access, distance helpers."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.graph import DistributedGraph


class TestConstruction:
    def test_rejects_empty_graph(self):
        with pytest.raises(ConfigurationError):
            DistributedGraph(nx.Graph())

    def test_uids_unique_and_in_range(self):
        g = DistributedGraph(nx.path_graph(20), uid_seed=1)
        uids = [g.uid(v) for v in g.nodes()]
        assert len(set(uids)) == 20
        assert all(1 <= u <= 20 ** 3 for u in uids)

    def test_explicit_uids(self):
        g = DistributedGraph(nx.path_graph(3), uids=[10, 20, 30])
        assert [g.uid(v) for v in g.nodes()] == [10, 20, 30]
        assert g.index_of_uid(20) == 1

    def test_explicit_uids_validated(self):
        with pytest.raises(ConfigurationError):
            DistributedGraph(nx.path_graph(3), uids=[1, 1, 2])
        with pytest.raises(ConfigurationError):
            DistributedGraph(nx.path_graph(3), uids=[1, 2])

    def test_uid_bits_is_logarithmic(self):
        g = DistributedGraph(nx.path_graph(100), uid_seed=2)
        assert g.uid_bits() <= 3 * 7 + 2  # 3 log2(100) + slack

    def test_labels_preserved(self):
        raw = nx.Graph([("a", "b"), ("b", "c")])
        g = DistributedGraph(raw)
        assert sorted(g.labels) == ["a", "b", "c"]

    def test_same_seed_same_uids(self):
        g1 = DistributedGraph(nx.path_graph(10), uid_seed=7)
        g2 = DistributedGraph(nx.path_graph(10), uid_seed=7)
        assert [g1.uid(v) for v in g1.nodes()] == [g2.uid(v) for v in g2.nodes()]


class TestTopology:
    def test_neighbors_sorted(self):
        g = DistributedGraph(nx.star_graph(5))
        assert g.neighbors(0) == [1, 2, 3, 4, 5]

    def test_degree_and_max_degree(self):
        g = DistributedGraph(nx.star_graph(5))
        assert g.degree(0) == 5
        assert g.degree(1) == 1
        assert g.max_degree() == 5

    def test_edges_canonical(self):
        g = DistributedGraph(nx.cycle_graph(4))
        for u, v in g.edges():
            assert u < v

    def test_ball_distances(self):
        g = DistributedGraph(nx.path_graph(10))
        ball = g.ball(5, 2)
        assert ball == {5: 0, 4: 1, 6: 1, 3: 2, 7: 2}

    def test_distance(self):
        g = DistributedGraph(nx.path_graph(10))
        assert g.distance(0, 9) == 9
        assert g.distance(3, 3) == 0

    def test_distance_disconnected_is_none(self):
        raw = nx.Graph()
        raw.add_edge(0, 1)
        raw.add_node(2)
        g = DistributedGraph(raw)
        assert g.distance(0, 2) is None

    def test_connected_components(self):
        raw = nx.Graph([(0, 1)])
        raw.add_node(2)
        g = DistributedGraph(raw)
        comps = g.connected_components()
        assert sorted(map(sorted, comps)) == [[0, 1], [2]]

    def test_subgraph_diameter(self):
        g = DistributedGraph(nx.path_graph(10))
        assert g.subgraph_diameter([2, 3, 4]) == 2
        assert g.subgraph_diameter([5]) == 0

    def test_weak_diameter_uses_g_distances(self):
        g = DistributedGraph(nx.cycle_graph(8))
        # 0 and 4 are opposite; weak diameter through G is 4 even though
        # the induced subgraph {0, 4} is disconnected.
        assert g.weak_diameter([0, 4]) == 4

    def test_weak_diameter_rejects_cross_component(self):
        raw = nx.Graph([(0, 1)])
        raw.add_node(2)
        g = DistributedGraph(raw)
        with pytest.raises(ConfigurationError):
            g.weak_diameter([0, 2])


class TestPowerGraph:
    def test_power_graph_edges(self):
        g = DistributedGraph(nx.path_graph(6), uid_seed=1)
        g2 = g.power_graph(2)
        assert g2.nx.has_edge(0, 2)
        assert g2.nx.has_edge(0, 1)
        assert not g2.nx.has_edge(0, 3)

    def test_power_preserves_uids(self):
        g = DistributedGraph(nx.path_graph(6), uid_seed=1)
        g2 = g.power_graph(3)
        assert [g2.uid(v) for v in g2.nodes()] == [g.uid(v) for v in g.nodes()]

    def test_power_validates(self):
        g = DistributedGraph(nx.path_graph(3))
        with pytest.raises(ConfigurationError):
            g.power_graph(0)

    @given(r=st.integers(1, 4))
    def test_power_distance_semantics(self, r):
        g = DistributedGraph(nx.cycle_graph(11))
        gr = g.power_graph(r)
        for u in range(11):
            for v in range(u + 1, 11):
                expected = g.distance(u, v) <= r
                assert gr.nx.has_edge(u, v) == expected


class TestReprAndBounds:
    def test_repr_mentions_size(self):
        g = DistributedGraph(nx.path_graph(5))
        assert "n=5" in repr(g)

    def test_eccentricity_bound(self):
        g = DistributedGraph(nx.path_graph(5))
        assert g.eccentricity_bound() >= 4
