"""The kernel layer: fused workspaces, mmap CSR, graph cache, JIT knob.

Four contracts, each pinned here:

1. **Fused kernels are bit-identical** to the stateless reference
   passes, including on the degenerate topologies ``reduceat`` gets
   wrong without the padded-sentinel fix (empty graphs, all-isolated
   nodes, single node, empty segments interleaved with full ones).
2. **Zero allocation after warm-up**: the fused ops run with
   ``np.empty``/``np.append``/``np.where``/... forbidden outright.
3. **Persistence round-trips exactly**: ``CSRGraph.save``/``load``
   (mmap or not) reproduce offsets/indices/uids/degrees bit-for-bit
   and engine runs on a mmap-loaded CSR match in-memory runs.
4. **The cache and the sweep dedupe change no bytes**: memoized graph
   builds and $REPRO_GRAPH_CACHE produce result-for-result identical
   sweeps while building each distinct graph once.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest

from helpers import FAMILY_NAMES
from repro.core.mis import ArrayLubyMIS, LubyMIS, luby_mis
from repro.errors import ConfigurationError
from repro.graphs import assign, make
from repro.randomness import IndependentSource
from repro.sim import CONGEST, FastEngine
from repro.sim.batch import CSRGraph, TrialSpec, grid, run_trials
from repro.sim.batch import tasks as batch_tasks
from repro.sim.batch.array import segment_reduce
from repro.sim.batch.kernels import (
    GRAPH_CACHE_ENV,
    ROUND_ENGINES,
    GraphCache,
    KernelEngine,
    KernelWorkspace,
    _NODE_SLOTS,
    default_graph_cache,
    fast_int_message_bits,
    native_available,
    native_unavailable_reason,
    round_engine,
)
from repro.sim.batch.tasks import luby_mis_trial
from repro.sim.primitives import (
    ArrayBFSForest,
    ArrayFloodMin,
    BFSTree,
    FloodMin,
    build_bfs_forest,
    flood_min,
)

INT64_MAX = np.iinfo(np.int64).max


def csr_of(neighbor_lists, uids=None):
    """Hand-built CSRGraph from index-keyed adjacency lists."""
    offsets = np.zeros(len(neighbor_lists) + 1, dtype=np.int64)
    np.cumsum([len(a) for a in neighbor_lists], out=offsets[1:])
    indices = np.array([u for adj in neighbor_lists for u in adj] or [],
                       dtype=np.int64)
    if uids is None:
        uids = tuple(range(1, len(neighbor_lists) + 1))
    return CSRGraph(offsets, indices, tuple(uids))


#: Degenerate topologies where a naive reduceat miscomputes.
EDGE_CASES = {
    "single-node": [[]],
    "all-isolated": [[], [], [], []],
    "interleaved-empty": [[2], [], [0, 4], [], [2]],
    "leading-empty": [[], [2], [1]],
    "trailing-empty": [[1], [0], []],
}


def reference_lex_max2(csr, primary, secondary, node_mask, empty=-1):
    best = np.full(csr.n, empty, dtype=np.int64)
    best_tie = np.full(csr.n, empty, dtype=np.int64)
    for v in range(csr.n):
        for u in csr.indices[csr.offsets[v]:csr.offsets[v + 1]]:
            if not node_mask[u]:
                continue
            pair = (primary[u], secondary[u])
            if pair > (best[v], best_tie[v]):
                best[v], best_tie[v] = pair
    return best, best_tie


def reference_adopt_min3(csr, primary, secondary, node_mask, bias=1,
                         empty=INT64_MAX):
    outs = [np.full(csr.n, empty, dtype=np.int64) for _ in range(3)]
    for v in range(csr.n):
        for u in csr.indices[csr.offsets[v]:csr.offsets[v + 1]]:
            if not node_mask[u]:
                continue
            trip = (primary[u], secondary[u] + bias, u)
            if trip < (outs[0][v], outs[1][v], outs[2][v]):
                outs[0][v], outs[1][v], outs[2][v] = trip
    return tuple(outs)


@pytest.mark.parametrize("name", sorted(EDGE_CASES))
class TestWorkspaceEdgeCases:
    """Fused ops == reference passes on every degenerate topology."""

    def make_case(self, name, seed=0):
        csr = csr_of(EDGE_CASES[name])
        ws = KernelWorkspace(csr.offsets, csr.indices)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 50, size=csr.n, dtype=np.int64)
        mask = rng.integers(0, 2, size=csr.n).astype(bool)
        return csr, ws, values, mask

    def test_segment_reduce_matches_stateless(self, name):
        csr, ws, values, _ = self.make_case(name)
        edge_values = values[csr.indices]
        for ufunc, identity in ((np.minimum, INT64_MAX), (np.maximum, -1),
                                (np.add, 0)):
            want = segment_reduce(edge_values, csr.offsets, ufunc, identity)
            got = ws.segment_reduce(edge_values, ufunc, identity)
            np.testing.assert_array_equal(got, want)

    def test_count_and_gather(self, name):
        csr, ws, values, mask = self.make_case(name)
        want_count = segment_reduce(
            mask[csr.indices].astype(np.int64), csr.offsets, np.add, 0)
        np.testing.assert_array_equal(ws.count_true(mask), want_count)
        want_min = segment_reduce(values[csr.indices], csr.offsets,
                                  np.minimum, INT64_MAX)
        np.testing.assert_array_equal(ws.gather_min(values), want_min)

    def test_lex_max2(self, name):
        csr, ws, values, mask = self.make_case(name)
        secondary = np.arange(csr.n, dtype=np.int64) * 7 % 5
        want = reference_lex_max2(csr, values, secondary, mask)
        got = ws.lex_max2(values, secondary, mask)
        np.testing.assert_array_equal(got[0], want[0])
        np.testing.assert_array_equal(got[1], want[1])

    def test_adopt_min3(self, name):
        csr, ws, values, mask = self.make_case(name)
        secondary = np.arange(csr.n, dtype=np.int64)
        want = reference_adopt_min3(csr, values, secondary, mask, bias=3)
        got = ws.adopt_min3(values, secondary, mask, bias=3)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_ties_resolve_identically(self, name):
        # All-equal primaries force every tie-break path.
        csr, ws, _, mask = self.make_case(name)
        values = np.full(csr.n, 9, dtype=np.int64)
        secondary = np.arange(csr.n, dtype=np.int64)[::-1].copy()
        want = reference_lex_max2(csr, values, secondary, mask)
        got = ws.lex_max2(values, secondary, mask)
        np.testing.assert_array_equal(got[1], want[1])
        want3 = reference_adopt_min3(csr, values, secondary, mask)
        got3 = ws.adopt_min3(values, secondary, mask)
        for g, w in zip(got3, want3):
            np.testing.assert_array_equal(g, w)


class TestFastIntMessageBits:
    """The frexp-split bit counter must match the shift-loop reference
    on every non-negative int64 it could ever see."""

    def test_exact_at_every_power_boundary(self):
        from repro.sim.batch.array import int_message_bits

        probes = [0, 1]
        for k in range(1, 63):
            probes.extend([(1 << k) - 1, 1 << k, (1 << k) + 1])
        probes.append(np.iinfo(np.int64).max)
        values = np.array(sorted(set(probes)), dtype=np.int64)
        np.testing.assert_array_equal(
            fast_int_message_bits(values), int_message_bits(values))

    def test_exact_on_random_values(self):
        from repro.sim.batch.array import int_message_bits

        rng = np.random.default_rng(11)
        values = rng.integers(0, np.iinfo(np.int64).max, size=5000,
                              endpoint=True, dtype=np.int64)
        np.testing.assert_array_equal(
            fast_int_message_bits(values), int_message_bits(values))

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            fast_int_message_bits(np.array([3, -1], dtype=np.int64))

    def test_empty_input(self):
        assert fast_int_message_bits(np.array([], dtype=np.int64)).size == 0


class TestWorkspaceMechanics:
    def test_node_slot_ring_reuses_after_capacity(self):
        ws = KernelWorkspace(np.array([0, 0], dtype=np.int64),
                             np.array([], dtype=np.int64))
        slots = [ws.node_slot() for _ in range(_NODE_SLOTS)]
        assert len({id(s) for s in slots}) == _NODE_SLOTS
        assert ws.node_slot() is slots[0]
        assert ws.node_slot() is slots[1]

    def test_fused_ops_allocate_nothing_after_warmup(self, monkeypatch):
        csr = csr_of(EDGE_CASES["interleaved-empty"])
        ws = KernelWorkspace(csr.offsets, csr.indices)
        values = np.arange(csr.n, dtype=np.int64)
        mask = values % 2 == 0

        def exercise():
            ws.segment_reduce(values[csr.indices], np.minimum, INT64_MAX,
                              out=ws.node_slot())
            ws.count_true(mask)
            ws.gather_min(values)
            ws.lex_max2(values, values, mask)
            ws.adopt_min3(values, values, mask)

        for _ in range(3):  # warm up: fill buffer pools and the ring
            exercise()

        def forbidden(*_args, **_kwargs):
            raise AssertionError("fused kernels must not allocate")

        for fn in ("empty", "zeros", "ones", "full", "append", "where"):
            monkeypatch.setattr(np, fn, forbidden)
        exercise()

    def test_engine_run_never_calls_np_append(self, monkeypatch, gnp60):
        # The original hot-path bug: segment_reduce padded via np.append
        # on every call. A whole kernel-engine run must not touch it.
        ref = flood_min(gnp60, 6, engine="fast")

        def forbidden(*_args, **_kwargs):
            raise AssertionError("np.append on the engine hot path")

        monkeypatch.setattr(np, "append", forbidden)
        assert_identical(ref, flood_min(gnp60, 6, engine="kernel"))


def assert_identical(ref, got):
    assert got.outputs == ref.outputs
    assert dataclasses.asdict(got.report) == dataclasses.asdict(ref.report)


@pytest.mark.parametrize("family", FAMILY_NAMES)
@pytest.mark.parametrize("engine", ["kernel", "native"])
class TestKernelParitySweep:
    """Kernel-layer engines == FastEngine across the 7-family sweep.

    Where numba is unavailable, ``engine="native"`` exercises the
    documented fallback (bit-identical by construction, warns once per
    engine build) — so this sweep pins both JIT parity and fallback
    parity depending on the environment.
    """

    SIZES = (13, 32)
    SEEDS = (0, 1, 2)

    def run_pair(self, family, n, seed, engine, node_factory, program,
                 source_seed=None, **kwargs):
        g = assign(make(family, n, seed=seed), "random", seed=seed)
        src = (IndependentSource(seed=source_seed)
               if source_seed is not None else None)
        ref = FastEngine(g, node_factory, source=src, model=CONGEST,
                         **kwargs).run()
        src = (IndependentSource(seed=source_seed)
               if source_seed is not None else None)
        with pytest.MonkeyPatch.context() as mp:
            if not native_available():
                mp.setattr("warnings.warn", lambda *a, **k: None)
            got = round_engine(engine, g, program, source=src,
                               model=CONGEST, **kwargs).run()
        assert_identical(ref, got)

    def test_luby_mis(self, family, engine):
        for n in self.SIZES:
            for seed in self.SEEDS:
                self.run_pair(family, n, seed, engine,
                              lambda _v: LubyMIS(), ArrayLubyMIS(),
                              source_seed=100 + seed)

    def test_flood_min(self, family, engine):
        for n in self.SIZES:
            for seed in self.SEEDS:
                self.run_pair(family, n, seed, engine,
                              lambda _v: FloodMin(1 + seed),
                              ArrayFloodMin(1 + seed))

    def test_bfs_forest(self, family, engine):
        for n in self.SIZES:
            for seed in self.SEEDS:
                roots = {0, seed + 1}
                self.run_pair(family, n, seed, engine,
                              lambda _v: BFSTree(roots, n),
                              ArrayBFSForest(roots, n), max_rounds=n + 2)


class TestMmapCSR:
    def test_save_load_roundtrip_exact(self, tmp_path, gnp60):
        csr = CSRGraph.from_graph(gnp60)
        path = tmp_path / "g"
        csr.save(path)
        for mmap in (True, False):
            loaded = CSRGraph.load(path, mmap=mmap)
            assert (loaded.n, loaded.m) == (csr.n, csr.m)
            np.testing.assert_array_equal(loaded.offsets, csr.offsets)
            np.testing.assert_array_equal(loaded.indices, csr.indices)
            np.testing.assert_array_equal(loaded.degrees, csr.degrees)
            assert loaded.uids == csr.uids
            assert loaded.uid(3) == csr.uid(3)

    def test_mmap_runs_bit_identical(self, tmp_path, gnp60):
        csr = CSRGraph.from_graph(gnp60)
        path = tmp_path / "g"
        csr.save(path)
        loaded = CSRGraph.load(path, mmap=True)
        for engine in ("array", "kernel"):
            ref = luby_mis(gnp60, IndependentSource(seed=5), engine=engine)
            got = luby_mis(None, IndependentSource(seed=5), engine=engine,
                           csr=loaded)
            assert_identical(ref, got)
            ref = build_bfs_forest(gnp60, {0, 7}, engine=engine)
            got = build_bfs_forest(None, {0, 7}, engine=engine, csr=loaded)
            assert_identical(ref, got)

    def test_load_rejects_non_cache_directory(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a CSRGraph.save"):
            CSRGraph.load(tmp_path / "missing")

    def test_engines_require_graph_or_csr(self):
        with pytest.raises(ConfigurationError, match="both were None"):
            flood_min(None, 3, engine="kernel")
        with pytest.raises(ConfigurationError, match="both were None"):
            build_bfs_forest(None, {0}, engine="kernel")


class TestGraphCache:
    FIELDS = dict(kind="test", family="path", n=9, seed=None)

    def test_miss_then_hit(self, tmp_path, path9):
        cache = GraphCache(tmp_path)
        assert cache.load(**self.FIELDS) is None
        csr = CSRGraph.from_graph(path9)
        key = cache.store(csr, **self.FIELDS)
        assert cache.entries() == [key]
        hit = cache.load(**self.FIELDS)
        assert hit is not None and hit.uids == csr.uids
        np.testing.assert_array_equal(hit.indices, csr.indices)

    def test_get_builds_once(self, tmp_path, path9):
        cache = GraphCache(tmp_path)
        calls = []

        def builder():
            calls.append(1)
            return CSRGraph.from_graph(path9)

        first = cache.get(builder, **self.FIELDS)
        second = cache.get(builder, **self.FIELDS)
        assert len(calls) == 1
        assert first.uids == second.uids

    def test_collision_detected(self, tmp_path, path9):
        cache = GraphCache(tmp_path)
        key = cache.store(CSRGraph.from_graph(path9), **self.FIELDS)
        spec = os.path.join(cache.path_of(key), "spec.json")
        with open(spec, "w", encoding="utf-8") as fh:
            json.dump({"kind": "something-else"}, fh)
        with pytest.raises(ConfigurationError, match="collision"):
            cache.load(**self.FIELDS)

    def test_corrupt_spec_detected(self, tmp_path, path9):
        cache = GraphCache(tmp_path)
        key = cache.store(CSRGraph.from_graph(path9), **self.FIELDS)
        spec = os.path.join(cache.path_of(key), "spec.json")
        with open(spec, "w", encoding="utf-8") as fh:
            fh.write("{not json")
        with pytest.raises(ConfigurationError, match="corrupt"):
            cache.load(**self.FIELDS)

    def test_prune_evicts_least_recently_used(self, tmp_path, path9):
        cache = GraphCache(tmp_path)
        csr = CSRGraph.from_graph(path9)
        keys = [cache.store(csr, **{**self.FIELDS, "n": n})
                for n in (1, 2, 3)]
        for age, key in zip((30, 20, 10), keys):
            ts = 1_700_000_000 - age
            os.utime(cache.path_of(key), (ts, ts))
        cache.load(**{**self.FIELDS, "n": 1})  # refresh the oldest
        evicted = cache.prune(keep=2)
        assert evicted == [keys[1]]
        assert set(cache.entries()) == {keys[0], keys[2]}
        assert cache.prune(keep=0) != []
        assert cache.entries() == []
        with pytest.raises(ConfigurationError, match=">= 0"):
            cache.prune(keep=-1)

    def test_default_cache_reads_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv(GRAPH_CACHE_ENV, raising=False)
        assert default_graph_cache() is None
        monkeypatch.setenv(GRAPH_CACHE_ENV, str(tmp_path / "cache"))
        cache = default_graph_cache()
        assert cache is not None and os.path.isdir(cache.root)


class TestNativeKnob:
    def test_unknown_engine_and_backend_rejected(self, path9):
        with pytest.raises(ConfigurationError, match="unknown array-layer"):
            round_engine("warp", path9, ArrayFloodMin(2))
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            KernelEngine(path9, ArrayFloodMin(2), backend="cuda")
        assert ROUND_ENGINES == ("array", "kernel", "native")

    @pytest.mark.skipif(native_available(), reason="numba importable here")
    def test_fallback_warns_and_matches(self, gnp60):
        assert isinstance(native_unavailable_reason(), str)
        ref = flood_min(gnp60, 4, engine="kernel")
        with pytest.warns(RuntimeWarning, match="falling back"):
            got = flood_min(gnp60, 4, engine="native")
        assert_identical(ref, got)

    @pytest.mark.skipif(not native_available(),
                        reason="numba not installed")
    def test_jit_path_live_when_numba_present(self):
        assert native_unavailable_reason() is None
        eng = KernelEngine(assign(make("path", 9), "random"),
                           ArrayFloodMin(2), backend="numba")
        assert eng._native


class TestSweepDedupe:
    """Graph-build memoization changes no result bytes."""

    SEEDS = list(range(5))

    def run_sweep(self, family, engine="fast", ids="random"):
        specs = grid([family], [12], self.SEEDS, engine=engine, ids=ids,
                     radius=6)
        from repro.sim.batch.tasks import flood_min_trial

        return run_trials(flood_min_trial, specs, workers=1)

    def fresh_memo(self, monkeypatch, cap=None):
        monkeypatch.setattr(batch_tasks, "_GRAPH_MEMO",
                            type(batch_tasks._GRAPH_MEMO)())
        if cap is not None:
            monkeypatch.setattr(batch_tasks, "_GRAPH_MEMO_CAP", cap)

    @pytest.mark.parametrize("family", ["path", "gnp-sparse"])
    @pytest.mark.parametrize("engine", ["fast", "kernel"])
    def test_memoized_sweep_byte_identical(self, monkeypatch, family,
                                           engine):
        self.fresh_memo(monkeypatch)
        memoized = self.run_sweep(family, engine=engine)
        self.fresh_memo(monkeypatch, cap=0)  # cap 0 == no reuse at all
        fresh = self.run_sweep(family, engine=engine)
        assert memoized == fresh

    def test_seed_invariant_family_builds_once(self, monkeypatch):
        self.fresh_memo(monkeypatch)
        calls = []
        real_make = batch_tasks.make
        monkeypatch.setattr(
            batch_tasks, "make",
            lambda *a, **k: calls.append(a) or real_make(*a, **k))
        self.run_sweep("path", ids="sequential")
        assert len(calls) == 1  # five seeds, one identical graph
        calls.clear()
        self.run_sweep("gnp-sparse")  # seed changes the topology
        assert len(calls) == len(self.SEEDS)

    def test_random_ids_still_keyed_by_seed(self, monkeypatch):
        # Seed-invariant topology but seeded UIDs: the graph family dedupes
        # per (family, n) only when the ID scheme is seed-free too.
        self.fresh_memo(monkeypatch)
        calls = []
        real_make = batch_tasks.make
        monkeypatch.setattr(
            batch_tasks, "make",
            lambda *a, **k: calls.append(a) or real_make(*a, **k))
        results = self.run_sweep("path", ids="random")
        assert len(calls) == len(self.SEEDS)
        # Distinct seeds must still see distinct UID assignments.
        bits = {r.data["total_bits"] for r in results}
        assert len(bits) > 1

    def test_disk_cache_round_trip_identical(self, monkeypatch, tmp_path):
        self.fresh_memo(monkeypatch)
        monkeypatch.delenv(GRAPH_CACHE_ENV, raising=False)
        baseline = self.run_sweep("path", engine="kernel")
        monkeypatch.setenv(GRAPH_CACHE_ENV, str(tmp_path / "gc"))
        self.fresh_memo(monkeypatch)
        cold = self.run_sweep("path", engine="kernel")
        assert GraphCache(tmp_path / "gc").entries()  # populated
        self.fresh_memo(monkeypatch)
        warm = self.run_sweep("path", engine="kernel")  # mmap hits
        assert baseline == cold == warm

    def test_task_engine_kernel_matches_fast(self, monkeypatch):
        self.fresh_memo(monkeypatch)
        spec = TrialSpec.of("cycle", 12, 3, engine="kernel")
        ref = TrialSpec.of("cycle", 12, 3, engine="fast")
        assert luby_mis_trial(spec).data == luby_mis_trial(ref).data
        bad = TrialSpec("cycle", 12, 3, (("engine", "warp"),))
        with pytest.raises(ConfigurationError, match="unknown engine"):
            luby_mis_trial(bad)
