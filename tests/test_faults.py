"""Deterministic fault injection: plans, flaky wrappers, chaos sweeps.

The contract under test: every fault is a pure function of (seed,
scope, label, counter) — two runs of the same plan see identical
weather — and the production retry/quarantine machinery absorbs all of
it, ending in a merged store byte-identical to a fault-free run.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.sim.batch import (
    CoordinatorUnavailable,
    DirTransport,
    FaultPlan,
    FlakyControl,
    FlakyTransport,
    PushIntegrityError,
    ReadThroughStore,
    RetryPolicy,
    RetryableError,
    SweepCoordinator,
    TrialStore,
    WorkUnit,
    flood_min_trial,
    grid,
    merge_pushed,
    run_trials,
    run_worker,
)

FLOOD_TASK_NAME = "repro.sim.batch.tasks.flood_min_trial"


class _SleepRecorder:
    def __init__(self) -> None:
        self.calls: list = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)


def _units(count: int) -> list:
    return [WorkUnit.of(i, "s", i, count, quick=True) for i in range(count)]


def _store_bytes(root: str) -> dict:
    contents = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                contents[os.path.relpath(path, root)] = handle.read()
    return contents


class TestFaultPlan:
    def test_schedule_is_a_pure_function_of_its_labels(self):
        first = FaultPlan(7, scope="w1", drop=0.2, error=0.2)
        second = FaultPlan(7, scope="w1", drop=0.2, error=0.2)
        sequence = [first.decide("lease") for _ in range(32)]
        assert sequence == [second.decide("lease") for _ in range(32)]
        assert sequence == first.preview("lease", 32)  # preview = replay
        # preview never advances the live counter.
        assert first.preview("renew", 4) == [
            first.decide("renew") for _ in range(4)
        ]

    def test_scope_and_label_decorrelate_schedules(self):
        base = FaultPlan(7, scope="w1", drop=0.3, delay=0.3)
        other_scope = FaultPlan(7, scope="w2", drop=0.3, delay=0.3)
        assert base.preview("lease", 64) != other_scope.preview("lease", 64)
        assert base.preview("lease", 64) != base.preview("renew", 64)

    def test_rates_are_respected_in_the_long_run(self):
        plan = FaultPlan(3, drop=0.25)
        decisions = plan.preview("push", 4000)
        dropped = sum(1 for kind in decisions if kind == "drop")
        assert 0.2 < dropped / 4000 < 0.3
        assert set(decisions) <= {None, "drop"}

    def test_zero_rate_kinds_never_fire(self):
        plan = FaultPlan(3, drop=0.0, error=1.0)
        assert set(plan.preview("x", 64)) == {"error"}

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="in \\[0, 1\\]"):
            FaultPlan(1, drop=1.5)
        with pytest.raises(ConfigurationError, match="exceeds 1"):
            FaultPlan(1, drop=0.6, error=0.6)
        with pytest.raises(ConfigurationError, match="delay_seconds"):
            FaultPlan(1, delay_seconds=-1)


class TestFlakyControl:
    def _coordinator(self) -> SweepCoordinator:
        return SweepCoordinator(_units(2), lease_ttl=30)

    def test_drop_raises_without_touching_the_coordinator(self):
        coordinator = self._coordinator()
        flaky = FlakyControl(coordinator, FaultPlan(1, drop=1.0))
        with pytest.raises(CoordinatorUnavailable, match="injected fault"):
            flaky.lease("w")
        assert coordinator.status()["leased"] == 0

    def test_error_is_a_retryable_503(self):
        coordinator = self._coordinator()
        flaky = FlakyControl(coordinator, FaultPlan(1, error=1.0))
        with pytest.raises(RetryableError, match="503"):
            flaky.complete("w", 0)
        assert coordinator.status()["completed"] == 0

    def test_delay_stalls_then_performs_the_call(self):
        recorder = _SleepRecorder()
        coordinator = self._coordinator()
        flaky = FlakyControl(
            coordinator,
            FaultPlan(1, delay=1.0, delay_seconds=0.05),
            sleep=recorder,
        )
        assert flaky.lease("w").unit.unit_id == 0
        assert recorder.calls == [0.05]
        assert coordinator.status()["leased"] == 1

    def test_duplicate_exercises_idempotency_and_returns_the_first(self):
        coordinator = self._coordinator()
        flaky = FlakyControl(coordinator, FaultPlan(1, duplicate=1.0))
        coordinator.lease("w")
        # The duplicated complete lands twice; callers see the first
        # verdict, and the second is absorbed as "duplicate".
        assert flaky.complete("w", 0) == "completed"
        assert coordinator.status()["completed"] == 1
        coordinator.lease("w")
        assert flaky.fail("w", 1, "x") == "requeued"
        assert coordinator.status()["pending"] == 1

    def test_lease_is_never_duplicated(self):
        """Duplicating a lease would strand a second unit until TTL
        expiry; the plan's duplicate decision downgrades to a delay."""
        recorder = _SleepRecorder()
        coordinator = self._coordinator()
        flaky = FlakyControl(
            coordinator, FaultPlan(1, duplicate=1.0), sleep=recorder
        )
        reply = flaky.lease("w")
        assert reply.unit.unit_id == 0
        assert coordinator.status()["leased"] == 1  # not 2
        assert len(recorder.calls) == 1


class TestFlakyTransport:
    def _source(self, tmp_path) -> str:
        specs = grid(["cycle"], [12], range(2), radius=12)
        store = TrialStore(tmp_path / "src")
        run_trials(flood_min_trial, specs, store=store)
        store.close()
        return str(tmp_path / "src")

    def test_truncated_push_is_rejected_by_the_digest_check(self, tmp_path):
        source = self._source(tmp_path)
        staging = str(tmp_path / "staging")
        flaky = FlakyTransport(
            DirTransport(staging), FaultPlan(1, truncate=1.0)
        )
        with pytest.raises(PushIntegrityError, match="corrupt"):
            flaky.push(source, "u0-a1-w")
        assert os.listdir(staging) == []  # nothing staged

    def test_retried_push_converges(self, tmp_path):
        """truncate-then-clean: exactly what RetryPolicy sees in anger."""
        source = self._source(tmp_path)
        staging = str(tmp_path / "staging")
        plan = FaultPlan(1, truncate=0.5)
        decisions = plan.preview("push", 8)
        assert "truncate" in decisions and None in decisions
        flaky = FlakyTransport(DirTransport(staging), plan)
        policy = RetryPolicy(attempts=8, base_delay=0.0, sleep=lambda s: None)
        policy.call(lambda: flaky.push(source, "u0-a1-w"), label="push")
        clean = DirTransport(str(tmp_path / "clean"))
        clean.push(source, "u0-a1-w")
        assert _store_bytes(
            os.path.join(staging, "u0-a1-w")
        ) == _store_bytes(os.path.join(str(tmp_path / "clean"), "u0-a1-w"))

    def test_drop_and_error_do_not_deliver(self, tmp_path):
        source = self._source(tmp_path)
        staging = str(tmp_path / "staging")
        dropper = FlakyTransport(DirTransport(staging), FaultPlan(1, drop=1.0))
        with pytest.raises(CoordinatorUnavailable):
            dropper.push(source, "a")
        erroring = FlakyTransport(
            DirTransport(staging), FaultPlan(1, error=1.0)
        )
        with pytest.raises(RetryableError, match="503"):
            erroring.push(source, "b")
        assert os.listdir(staging) == []

    def test_duplicate_push_is_idempotent(self, tmp_path):
        source = self._source(tmp_path)
        staging = str(tmp_path / "staging")
        flaky = FlakyTransport(
            DirTransport(staging), FaultPlan(1, duplicate=1.0)
        )
        flaky.push(source, "u0-a1-w")
        assert os.listdir(staging) == ["u0-a1-w"]


class TestChaosSweepEndToEnd:
    """The capstone in miniature: a full in-process sweep under an
    aggressive fault plan plus one poison unit, byte-identical."""

    def test_chaotic_sweep_is_byte_identical_with_poison_quarantined(
        self, tmp_path
    ):
        specs = grid(["cycle", "path"], [12], range(3), radius=12)
        single = TrialStore(tmp_path / "single")
        run_trials(flood_min_trial, specs, store=single)
        single.close()

        units = [WorkUnit.of(i, "flood", i, 4) for i in range(4)]
        coordinator = SweepCoordinator(units, lease_ttl=30, max_attempts=2)
        staging_root = str(tmp_path / "staging")
        poisoned = 2

        def execute(unit, store, renew):
            if unit.unit_id == poisoned:
                raise RuntimeError("chaos: poisoned unit")
            run_trials(
                flood_min_trial,
                specs,
                store=store,
                shard=(unit.index, unit.count),
                progress=renew,
            )

        worker_stats = {}
        for worker_id in ("w1", "w2"):
            control = FlakyControl(
                coordinator,
                FaultPlan(
                    11,
                    scope=f"control:{worker_id}",
                    drop=0.1,
                    delay=0.1,
                    duplicate=0.1,
                    error=0.1,
                    delay_seconds=0.0,
                ),
                sleep=lambda s: None,
            )
            transport = FlakyTransport(
                DirTransport(staging_root),
                FaultPlan(
                    11,
                    scope=f"push:{worker_id}",
                    drop=0.1,
                    delay=0.1,
                    duplicate=0.1,
                    error=0.1,
                    truncate=0.3,
                    delay_seconds=0.0,
                ),
                sleep=lambda s: None,
            )
            worker_stats[worker_id] = run_worker(
                control,
                execute,
                transport,
                str(tmp_path / f"scratch-{worker_id}"),
                worker_id=worker_id,
                sleep=lambda s: None,
                retry=RetryPolicy(
                    attempts=10,
                    base_delay=0.0,
                    seed=worker_id,
                    sleep=lambda s: None,
                ),
            )

        status = coordinator.status()
        assert status["done"]
        assert status["completed"] == 3
        assert status["quarantined"] == 1
        entry = status["quarantine"][str(poisoned)]
        assert entry["attempts"] == 2  # exactly --max-attempts
        assert "poisoned" in entry["error"]
        total_failed = sum(s["failed"] for s in worker_stats.values())
        assert total_failed == 2  # one /fail per burned attempt
        # Chaos actually happened: the fleet had to retry something.
        assert sum(s["retries"] for s in worker_stats.values()) > 0

        # Merge + backfill + repack exactly as run_coordinator_mode
        # does: the quarantined unit's slice is computed locally into
        # the staging layer first, then the replay repacks from a full
        # cache — byte-identical to the single-host store.
        staging = TrialStore(tmp_path / "merged-staging")
        merge_pushed(staging_root, staging)
        run_trials(
            flood_min_trial, specs, store=staging, shard=(poisoned, 4)
        )
        final = TrialStore(tmp_path / "final")
        layered = ReadThroughStore(final, staging)
        replay = run_trials(flood_min_trial, specs, store=layered)
        assert replay == run_trials(flood_min_trial, specs)
        final.close()
        assert _store_bytes(str(tmp_path / "final")) == _store_bytes(
            str(tmp_path / "single")
        )
