"""The theorem pipelines: deterministic, 3.1, 3.5, 3.6, 3.7, 4.2."""

import math

import pytest

from repro.core.decomposition import (
    deterministic_decomposition,
    gather_bits,
    kwise_decomposition,
    measure,
    shared_bits_needed,
    shared_randomness_decomposition,
    shattering_decomposition,
    sparse_bits_decomposition,
    sparse_bits_strong_decomposition,
    target_K,
    theoretical_failure_bound,
)
from repro.errors import ConfigurationError
from repro.graphs import assign, make
from repro.randomness import IndependentSource, SharedRandomness, SparseRandomness

from helpers import family_graphs


def _logn(n):
    return max(1, math.ceil(math.log2(max(2, n))))


class TestDeterministic:
    def test_valid_on_all_families(self):
        for name, g in family_graphs(48, seed=3):
            dec, report = deterministic_decomposition(g)
            assert dec.violations(g) == [], name
            logn = _logn(g.n)
            assert dec.num_colors() <= logn + 1, name
            assert dec.max_strong_diameter(g) <= 2 * logn, name

    def test_fully_deterministic(self, gnp60):
        d1, _ = deterministic_decomposition(gnp60)
        d2, _ = deterministic_decomposition(gnp60)
        assert d1.cluster_of == d2.cluster_of

    def test_uses_no_randomness(self, gnp60):
        _d, report = deterministic_decomposition(gnp60)
        assert report.randomness_bits == 0

    def test_single_node(self):
        g = assign(make("path", 1), "sequential")
        dec, _ = deterministic_decomposition(g)
        assert dec.is_valid(g)
        assert dec.num_colors() == 1


class TestSparseBits31:
    def test_valid_decomposition(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=2)
        dec, report, extra = sparse_bits_decomposition(
            grid36, src, spacing=6, strict=False)
        assert dec is not None
        assert dec.violations(grid36) == []

    def test_only_holder_bits_consumed(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=2)
        sparse_bits_decomposition(grid36, src, spacing=6, strict=False)
        # Every consumed bit came from a holder (the source enforces it;
        # this asserts the ledger agrees).
        assert set(src.nodes_touched()) <= src.holders

    def test_gathering_pools_and_isolation(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=2)
        gathered = gather_bits(grid36, src, bits_needed=4, spacing=6)
        members = gathered.cluster_members()
        assert set(v for m in members.values() for v in m) == set(grid36.nodes())
        for center, pool in gathered.pools.items():
            if center not in gathered.isolated:
                assert pool, f"non-isolated cluster {center} got no bits"

    def test_whole_graph_spacing_gives_isolated_cluster(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=2)
        gathered = gather_bits(grid36, src, bits_needed=4, spacing=100)
        assert len(gathered.cluster_members()) == 1
        assert len(gathered.isolated) == 1

    def test_isolated_only_graph_needs_no_randomness(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=2)
        dec, _rep, extra = sparse_bits_decomposition(
            grid36, src, spacing=100, strict=True)
        assert dec is not None and dec.is_valid(grid36)
        assert extra["pool_bits_used"] == 0

    def test_gather_validates(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=2)
        with pytest.raises(ConfigurationError):
            gather_bits(grid36, src, bits_needed=0)
        with pytest.raises(ConfigurationError):
            gather_bits(grid36, src, bits_needed=4, spacing=1)


class TestKWise35:
    def test_k1_always_fails(self, cycle12):
        dec, _r, _e = kwise_decomposition(cycle12, k=1, seed=3, strict=True)
        assert dec is None

    def test_large_k_succeeds(self, cycle12):
        dec, _r, extra = kwise_decomposition(cycle12, k=16, seed=3,
                                             strict=True)
        assert dec is not None
        assert dec.violations(cycle12) == []
        assert extra["seed_bits"] == 16 * extra["field_degree"]

    def test_seed_bits_are_polylog(self):
        g = assign(make("gnp-sparse", 100, seed=1), "random", seed=1)
        _d, _r, extra = kwise_decomposition(g, seed=2, strict=False)
        # k*m = O(log^3 n) fully independent bits behind poly(n) k-wise.
        assert extra["seed_bits"] <= 64 * _logn(g.n) ** 3


class TestSharedCongest36:
    def test_valid_with_congestion_one(self, gnp60):
        dec, report, extra = shared_randomness_decomposition(
            gnp60, seed=4, strict=False)
        assert dec is not None
        assert dec.violations(gnp60) == []
        assert dec.congestion() == 1

    def test_diameter_and_colors_bounds(self, gnp60):
        dec, _r, _e = shared_randomness_decomposition(
            gnp60, seed=4, strict=False)
        logn = _logn(gnp60.n)
        assert dec.num_colors() <= 4 * logn
        assert dec.max_strong_diameter(gnp60) <= 4 * logn * logn

    def test_no_private_randomness(self, gnp60):
        shared = SharedRandomness(shared_bits_needed(gnp60.n), seed=9)
        dec, _r, extra = shared_randomness_decomposition(
            gnp60, shared=shared, strict=False)
        # Every bit read is a read of the single shared string.
        assert set(shared.nodes_touched()) == {"__shared__"}

    def test_short_shared_string_rejected(self, gnp60):
        with pytest.raises(ConfigurationError):
            shared_randomness_decomposition(
                gnp60, shared=SharedRandomness(16, seed=1))

    def test_deterministic_given_seed(self, cycle12):
        d1, _r1, _e1 = shared_randomness_decomposition(
            cycle12, seed=5, strict=False)
        d2, _r2, _e2 = shared_randomness_decomposition(
            cycle12, seed=5, strict=False)
        assert d1.cluster_of == d2.cluster_of

    def test_trees_span_clusters(self, gnp60):
        import networkx as nx
        dec, _r, _e = shared_randomness_decomposition(
            gnp60, seed=4, strict=False)
        for cid, members in dec.clusters().items():
            edges = dec.trees.get(cid, [])
            if len(members) <= 1:
                continue
            t = nx.Graph(edges)
            assert set(t.nodes()) >= members


class TestSparseStrong37:
    def test_valid_strong_diameter(self, grid36):
        src = SparseRandomness.for_graph(grid36, h=1, seed=6)
        dec, _r, extra = sparse_bits_strong_decomposition(
            grid36, src, spacing=6, strict=False)
        assert dec is not None
        assert dec.violations(grid36) == []
        assert dec.congestion() == 1

    def test_diameter_h_free(self):
        g = assign(make("grid", 144, seed=2), "random", seed=2)
        logn = _logn(g.n)
        diams = []
        for h in (1, 3):
            src = SparseRandomness.for_graph(g, h=h, seed=7)
            dec, _r, _e = sparse_bits_strong_decomposition(
                g, src, spacing=4 * h + 4, strict=False)
            diams.append(dec.max_strong_diameter(g))
        assert max(diams) <= 4 * logn * logn


class TestShattering42:
    def test_always_produces_valid_decomposition(self):
        for t in range(4):
            g = assign(make("grid", 100, seed=t), "random", seed=t)
            dec, _r, extra = shattering_decomposition(
                g, IndependentSource(seed=50 + t), en_phases=3, cap=6)
            assert dec is not None
            assert dec.violations(g) == [], extra

    def test_no_leftover_skips_finish(self, gnp60):
        dec, _r, extra = shattering_decomposition(
            gnp60, IndependentSource(seed=8))
        assert extra["leftover"] == 0
        assert extra["det_colors"] == 0
        assert dec.is_valid(gnp60)

    def test_separated_set_small(self):
        sizes = []
        for t in range(6):
            g = assign(make("grid", 100, seed=t), "random", seed=100 + t)
            _d, _r, extra = shattering_decomposition(
                g, IndependentSource(seed=200 + t), en_phases=2, cap=5)
            sizes.append(extra["separated_set_size"])
        # The shattering bound: the separated core is tiny even when the
        # leftover set is not.
        assert max(sizes) <= 4

    def test_failure_bound_helpers(self):
        assert theoretical_failure_bound(100, 2) == pytest.approx(1e-4)
        assert theoretical_failure_bound(1, 5) == 0.0
        assert target_K(16) >= 1
        assert target_K(2 ** 10, epsilon=0.25) >= target_K(2 ** 4, epsilon=0.25)


class TestQualityMeasure:
    def test_measure_roundtrip(self, gnp60, source):
        from repro.core.decomposition import elkin_neiman
        dec, _r, _e = elkin_neiman(gnp60, source)
        q = measure(gnp60, dec)
        assert q.valid
        assert q.colors == dec.num_colors()
        assert q.clusters == len(dec.clusters())
        assert set(q.row()) >= {"colors", "congestion", "valid"}

    def test_measure_none(self, gnp60):
        assert measure(gnp60, None) is None
