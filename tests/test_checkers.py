"""Local checkers: soundness (reject broken) and completeness (accept valid)."""


from repro.checkers import (
    ColoringChecker,
    DecompositionChecker,
    MISChecker,
    RulingSetChecker,
    SinklessOrientationChecker,
    SplittingChecker,
    decomposition_outputs,
)
from repro.core.coloring import coloring_via_decomposition
from repro.core.decomposition import deterministic_decomposition
from repro.core.mis import mis_via_decomposition
from repro.core.ruling_sets import greedy_ruling_set
from repro.core.sinkless import deterministic_orientation
from repro.graphs import assign, random_regular
from repro.sim.graph import DistributedGraph


class TestMISChecker:
    def test_accepts_valid(self, gnp60):
        dec, _ = deterministic_decomposition(gnp60)
        flags, _ = mis_via_decomposition(gnp60, dec)
        verdict = MISChecker().check(gnp60, flags)
        assert verdict.ok and not verdict.rejecting_nodes

    def test_rejects_independence_violation(self, path9):
        flags = {v: True for v in path9.nodes()}
        verdict = MISChecker().check(path9, flags)
        assert not verdict.ok

    def test_rejects_maximality_violation(self, path9):
        flags = {v: False for v in path9.nodes()}
        assert not MISChecker().check(path9, flags).ok

    def test_rejects_missing_output(self, path9):
        flags = {v: (v % 2 == 0) for v in path9.nodes()}
        del flags[4]
        assert not MISChecker().check(path9, flags).ok

    def test_isolated_node_must_join(self):
        import networkx as nx
        raw = nx.Graph()
        raw.add_nodes_from([0, 1])
        raw.add_edge(0, 1)
        raw.add_node(2)
        g = DistributedGraph(raw)
        assert MISChecker().check(g, {0: True, 1: False, 2: True}).ok
        assert not MISChecker().check(g, {0: True, 1: False, 2: False}).ok

    def test_rejecting_nodes_are_local(self, path9):
        # Break maximality at one end only; far nodes must still accept.
        flags = {v: False for v in path9.nodes()}
        for v in range(3, 9):
            flags[v] = v % 2 == 1
        verdict = MISChecker().check(path9, flags)
        assert not verdict.ok
        assert set(verdict.rejecting_nodes) <= {0, 1, 2, 3}


class TestColoringChecker:
    def test_accepts_valid(self, dense40):
        dec, _ = deterministic_decomposition(dense40)
        colors, _ = coloring_via_decomposition(dense40, dec)
        checker = ColoringChecker(dense40.max_degree() + 1)
        assert checker.check(dense40, colors).ok

    def test_rejects_conflict(self, path9):
        colors = {v: 0 for v in path9.nodes()}
        assert not ColoringChecker().check(path9, colors).ok

    def test_rejects_palette_overflow(self, path9):
        colors = {v: v for v in path9.nodes()}
        assert not ColoringChecker(palette_size=3).check(path9, colors).ok

    def test_rejects_negative_or_non_int(self, path9):
        colors = {v: (v % 2) for v in path9.nodes()}
        colors[0] = -1
        assert not ColoringChecker().check(path9, colors).ok
        colors[0] = "red"
        assert not ColoringChecker().check(path9, colors).ok


class TestRulingSetChecker:
    def test_accepts_greedy_output(self, grid36):
        alpha = 3
        selected, _ = greedy_ruling_set(grid36, alpha=alpha)
        outputs = {v: (v in selected) for v in grid36.nodes()}
        checker = RulingSetChecker(alpha=alpha, beta=alpha - 1)
        assert checker.check(grid36, outputs).ok

    def test_rejects_too_close_pair(self, path9):
        outputs = {v: v in (0, 1) for v in path9.nodes()}
        assert not RulingSetChecker(alpha=3, beta=4).check(path9, outputs).ok

    def test_rejects_undominated(self, path9):
        outputs = {v: (v == 0) for v in path9.nodes()}
        assert not RulingSetChecker(alpha=2, beta=2).check(path9, outputs).ok

    def test_nodes_outside_u_are_exempt(self, path9):
        outputs = {v: None for v in path9.nodes()}
        outputs[0] = True
        assert RulingSetChecker(alpha=2, beta=3).check(path9, outputs).ok


class TestDecompositionChecker:
    def test_accepts_valid(self, gnp60):
        dec, _ = deterministic_decomposition(gnp60)
        checker = DecompositionChecker(
            max_colors=dec.num_colors(),
            max_diameter=dec.max_weak_diameter(gnp60))
        assert checker.check(gnp60, decomposition_outputs(dec)).ok

    def test_strong_mode_accepts_valid(self, gnp60):
        dec, _ = deterministic_decomposition(gnp60)
        checker = DecompositionChecker(
            max_colors=dec.num_colors(),
            max_diameter=dec.max_strong_diameter(gnp60), strong=True)
        assert checker.check(gnp60, decomposition_outputs(dec)).ok

    def test_rejects_adjacent_same_color(self, cycle12):
        outputs = {v: (v // 3, 0) for v in range(12)}  # all color 0
        assert not DecompositionChecker(4, 3).check(cycle12, outputs).ok

    def test_rejects_oversized_cluster(self, path9):
        outputs = {v: (0, 0) for v in path9.nodes()}
        assert not DecompositionChecker(1, 3).check(path9, outputs).ok

    def test_rejects_color_out_of_range(self, cycle12):
        outputs = {v: (v // 3, 7) for v in range(12)}
        assert not DecompositionChecker(3, 3).check(cycle12, outputs).ok

    def test_rejects_malformed_output(self, path9):
        outputs = {v: "cluster-a" for v in path9.nodes()}
        assert not DecompositionChecker(2, 9).check(path9, outputs).ok

    def test_radius_is_diameter_plus_one(self, path9):
        checker = DecompositionChecker(3, 5)
        assert checker.radius(9) == 6


class TestSplittingChecker:
    def test_accepts_and_rejects(self):
        import networkx as nx
        # U = {0}, V = {1, 2}: star.
        raw = nx.Graph([(0, 1), (0, 2)])
        g = DistributedGraph(raw)
        good = {0: "u", 1: 0, 2: 1}
        bad = {0: "u", 1: 0, 2: 0}
        assert SplittingChecker().check(g, good).ok
        assert not SplittingChecker().check(g, bad).ok

    def test_v_node_must_output_color(self):
        import networkx as nx
        g = DistributedGraph(nx.Graph([(0, 1), (0, 2)]))
        outputs = {0: "u", 1: 0, 2: "blue"}
        assert not SplittingChecker().check(g, outputs).ok


class TestSinklessChecker:
    def test_accepts_valid_orientation(self):
        g = assign(random_regular(20, 3, seed=1), "random", seed=1)
        orientation, _ = deterministic_orientation(g)
        outputs = {v: frozenset() for v in g.nodes()}
        outs = {v: set() for v in g.nodes()}
        for (a, b), (tail, head) in orientation.items():
            outs[tail].add(head)
        outputs = {v: frozenset(outs[v]) for v in g.nodes()}
        assert SinklessOrientationChecker().check(g, outputs).ok

    def test_rejects_sink(self):
        g = assign(random_regular(20, 3, seed=1), "random", seed=1)
        # All edges point toward node 0's side: make node 0 a sink.
        outputs = {v: frozenset(u for u in g.neighbors(v) if u != 0)
                   for v in g.nodes()}
        # Fix consistency first: edge (u,v) out of exactly one side.
        outs = {v: set() for v in g.nodes()}
        for a, b in g.edges():
            if a == 0:
                outs[b].add(a)  # points into 0
            elif b == 0:
                outs[a].add(b)
            else:
                outs[min(a, b)].add(max(a, b))
        outputs = {v: frozenset(outs[v]) for v in g.nodes()}
        verdict = SinklessOrientationChecker().check(g, outputs)
        assert not verdict.ok
        assert 0 in verdict.rejecting_nodes

    def test_rejects_inconsistent_edge(self):
        import networkx as nx
        g = DistributedGraph(nx.path_graph(2))
        # Both endpoints claim the edge outgoing.
        outputs = {0: frozenset({1}), 1: frozenset({0})}
        assert not SinklessOrientationChecker(min_degree=3).check(
            g, outputs).ok
