"""Randomness sources: determinism, metering, budgets, samplers."""

import pytest

from repro.errors import ConfigurationError, ModelViolation, RandomnessExhausted
from repro.randomness import (
    IndependentSource,
    SharedRandomness,
    SparseRandomness,
)
from repro.randomness.pooled import PooledBits


class TestIndependentSource:
    def test_deterministic_given_seed(self):
        a = IndependentSource(seed=5)
        b = IndependentSource(seed=5)
        assert a.bits(3, 64) == b.bits(3, 64)

    def test_different_seeds_differ(self):
        a = IndependentSource(seed=5)
        b = IndependentSource(seed=6)
        assert a.bits(0, 64) != b.bits(0, 64)

    def test_different_nodes_differ(self):
        s = IndependentSource(seed=5)
        assert s.bits(0, 64) != s.bits(1, 64)

    def test_repeated_reads_are_cached(self):
        s = IndependentSource(seed=1)
        first = s.bit("x", 7)
        assert s.bit("x", 7) == first
        assert s.bits_consumed == 1  # cached read does not re-consume

    def test_metering_counts_distinct_bits(self):
        s = IndependentSource(seed=1)
        s.bits("a", 10)
        s.bits("b", 5)
        assert s.bits_consumed == 15
        assert s.bits_consumed_by("a") == 10
        assert s.bits_consumed_by("b") == 5
        assert set(s.nodes_touched()) == {"a", "b"}

    def test_budget_enforced(self):
        s = IndependentSource(seed=1, bit_budget=8)
        s.bits("a", 8)
        with pytest.raises(RandomnessExhausted):
            s.bit("a", 8)

    def test_budget_allows_cached_rereads(self):
        s = IndependentSource(seed=1, bit_budget=4)
        s.bits("a", 4)
        assert s.bit("a", 0) in (0, 1)  # re-read, no new consumption

    def test_fork_is_reproducible_and_distinct(self):
        s = IndependentSource(seed=9)
        f1 = s.fork("phase-1")
        f2 = s.fork("phase-1")
        f3 = s.fork("phase-2")
        assert f1.bits(0, 32) == f2.bits(0, 32)
        assert f1.bits(0, 32) != f3.bits(0, 32)

    def test_reset_meter(self):
        s = IndependentSource(seed=1)
        s.bits(0, 8)
        s.reset_meter()
        assert s.bits_consumed == 0

    def test_roughly_unbiased(self):
        s = IndependentSource(seed=4)
        ones = sum(s.bits("node", 2000))
        assert 850 <= ones <= 1150

    def test_describe_mentions_class(self):
        assert "IndependentSource" in IndependentSource(seed=1).describe()


class TestSamplers:
    def test_uniform_int_exact_range(self):
        s = IndependentSource(seed=2)
        seen = set()
        offset = 0
        for _ in range(300):
            value, used = s.uniform_int("u", 5, offset)
            offset += used
            seen.add(value)
            assert 0 <= value < 5
        assert seen == {0, 1, 2, 3, 4}

    def test_uniform_int_bound_one(self):
        s = IndependentSource(seed=2)
        assert s.uniform_int("u", 1) == (0, 0)

    def test_uniform_int_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            IndependentSource(seed=1).uniform_int("u", 0)

    def test_bernoulli_bounds(self):
        s = IndependentSource(seed=3)
        offset = 0
        hits = 0
        for _ in range(400):
            outcome, used = s.bernoulli("b", 1, 4, offset)
            offset += used
            hits += outcome
        assert 50 <= hits <= 150  # ~100 expected

    def test_bernoulli_validates(self):
        with pytest.raises(ConfigurationError):
            IndependentSource(seed=1).bernoulli("b", 5, 4)

    def test_geometric_distribution_shape(self):
        s = IndependentSource(seed=5)
        offset = 0
        counts = {}
        for _ in range(800):
            value, used = s.geometric("g", 30, offset)
            offset += used
            counts[value] = counts.get(value, 0) + 1
        # Pr[X=1] = 1/2, Pr[X=2] = 1/4.
        assert 320 <= counts.get(1, 0) <= 480
        assert 130 <= counts.get(2, 0) <= 270

    def test_geometric_cap(self):
        s = IndependentSource(seed=5)
        value, used = s.geometric("g", 1)
        assert value == 1 and used == 1

    def test_geometric_validates_cap(self):
        with pytest.raises(ConfigurationError):
            IndependentSource(seed=1).geometric("g", 0)


class TestSharedRandomness:
    def test_materialized_length(self):
        s = SharedRandomness(77, seed=1)
        assert s.seed_bits == 77
        assert len(s.global_bits(77)) == 77

    def test_reads_past_end_raise(self):
        s = SharedRandomness(8, seed=1)
        with pytest.raises(RandomnessExhausted):
            s.global_bit(8)

    def test_explicit_bits(self):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        s = SharedRandomness(8, explicit_bits=bits)
        assert s.global_bits(8) == bits

    def test_explicit_bits_validated(self):
        with pytest.raises(ConfigurationError):
            SharedRandomness(3, explicit_bits=[0, 2, 1])
        with pytest.raises(ConfigurationError):
            SharedRandomness(3, explicit_bits=[0, 1])

    def test_as_int_big_endian(self):
        s = SharedRandomness(4, explicit_bits=[1, 0, 1, 1])
        assert s.as_int(4) == 0b1011

    def test_node_argument_is_ignored(self):
        s = SharedRandomness(16, seed=2)
        assert s.bit("a", 3) == s.bit("b", 3)

    def test_enumerate_all_covers_space(self):
        seen = {tuple(sh.global_bits(3))
                for sh in SharedRandomness.enumerate_all(3)}
        assert len(seen) == 8

    def test_expand_kwise_requires_enough_bits(self):
        s = SharedRandomness(4, seed=1)
        with pytest.raises(RandomnessExhausted):
            s.expand_kwise(4, 16, 4)

    def test_expand_kwise_deterministic(self):
        s1 = SharedRandomness(256, seed=9)
        s2 = SharedRandomness(256, seed=9)
        k1 = s1.expand_kwise(3, 8, 4)
        k2 = s2.expand_kwise(3, 8, 4)
        assert [k1.bit(v, i) for v in range(8) for i in range(4)] == \
               [k2.bit(v, i) for v in range(8) for i in range(4)]


class TestSparseRandomness:
    def test_holder_bits_are_bits(self, grid36):
        s = SparseRandomness.for_graph(grid36, h=2, seed=1)
        for holder in s.holders:
            assert s.holder_bit(holder) in (0, 1)

    def test_non_holder_access_raises(self, grid36):
        s = SparseRandomness.for_graph(grid36, h=2, seed=1)
        outsider = next(v for v in grid36.nodes() if v not in s.holders)
        with pytest.raises(ModelViolation):
            s.bit(outsider, 0)

    def test_second_bit_raises(self, grid36):
        s = SparseRandomness.for_graph(grid36, h=2, seed=1)
        holder = next(iter(s.holders))
        with pytest.raises(ModelViolation):
            s.bit(holder, 1)

    def test_covering_verified(self, grid36):
        for h in (1, 2, 3):
            s = SparseRandomness.for_graph(grid36, h=h, seed=2)
            assert s.verify_covering(grid36)

    def test_dense_style_is_everyone(self, cycle12):
        s = SparseRandomness.for_graph(cycle12, h=2, seed=1, style="dense")
        assert s.holders == set(cycle12.nodes())

    def test_holders_are_spread(self, grid36):
        # 'sparse' style: holders pairwise further than h apart.
        h = 2
        s = SparseRandomness.for_graph(grid36, h=h, seed=3)
        holders = sorted(s.holders)
        for i, a in enumerate(holders):
            for b in holders[i + 1:]:
                assert grid36.distance(a, b) > h

    def test_seed_bits_equals_holders(self, grid36):
        s = SparseRandomness.for_graph(grid36, h=1, seed=1)
        assert s.seed_bits == len(s.holders)

    def test_empty_holders_rejected(self):
        with pytest.raises(ConfigurationError):
            SparseRandomness([], h=1)


class TestPooledBits:
    def test_serves_pool_bits_in_order(self):
        p = PooledBits({"c": [1, 0, 1]})
        assert [p.bit("c", i) for i in range(3)] == [1, 0, 1]

    def test_exhaustion(self):
        p = PooledBits({"c": [1, 0]})
        p.bits("c", 2)
        with pytest.raises(RandomnessExhausted):
            p.bit("c", 2)

    def test_unknown_pool(self):
        p = PooledBits({"c": [1]})
        with pytest.raises(ConfigurationError):
            p.bit("d", 0)

    def test_remaining_accounting(self):
        p = PooledBits({"c": [1, 0, 1, 1]})
        p.bits("c", 3)
        assert p.remaining("c") == 1
        assert p.pool_size("c") == 4

    def test_validates_bits(self):
        with pytest.raises(ConfigurationError):
            PooledBits({"c": [0, 2]})

    def test_requires_pools(self):
        with pytest.raises(ConfigurationError):
            PooledBits({})

    def test_seed_bits_total(self):
        p = PooledBits({"a": [1, 1], "b": [0]})
        assert p.seed_bits == 3
