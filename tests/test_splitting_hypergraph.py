"""Splitting (Lemma 3.4) and conflict-free multi-coloring (Theorem 3.5)."""

import random

import pytest

from repro.core.hypergraph import deterministic_small_edges, mark_and_conquer
from repro.core.splitting import (
    make_source,
    random_instance,
    shared_neighborhood_instance,
    split,
    split_with_source,
)
from repro.errors import ConfigurationError
from repro.randomness import IndependentSource, KWiseSource
from repro.structures import Hypergraph, conflict_free_ok


class TestInstances:
    def test_random_instance_degrees(self):
        inst = random_instance(10, 30, 7, seed=1)
        assert all(len(inst.adjacency[u]) == 7 for u in inst.u_side)

    def test_random_instance_validates(self):
        with pytest.raises(ConfigurationError):
            random_instance(4, 5, 6)

    def test_shared_neighborhood_instance(self):
        inst = shared_neighborhood_instance(10, 40, 8, overlap=0.5, seed=2)
        assert inst.min_degree >= 1
        assert all(set(a) <= set(inst.v_side)
                   for a in inst.adjacency.values())

    def test_shared_neighborhood_validates(self):
        with pytest.raises(ConfigurationError):
            shared_neighborhood_instance(4, 8, 4, overlap=2.0)
        with pytest.raises(ConfigurationError):
            shared_neighborhood_instance(4, 8, 16)


class TestSplitting:
    @pytest.mark.parametrize(
        "regime", ["independent", "kwise", "shared-kwise", "epsilon-biased"])
    def test_zero_rounds_and_high_success(self, regime):
        successes = 0
        for t in range(15):
            inst = random_instance(30, 80, 24, seed=t)
            _col, ok, report, _src = split(inst, regime, seed=3 * t)
            assert report.rounds == 0
            successes += ok
        assert successes >= 13, regime

    def test_coloring_covers_v_side(self):
        inst = random_instance(5, 20, 8, seed=4)
        coloring, _ok, _rep, _src = split(inst, "independent", seed=1)
        assert set(coloring) == set(inst.v_side)
        assert set(coloring.values()) <= {0, 1}

    def test_epsilon_biased_seed_is_logarithmic(self):
        inst = random_instance(30, 256, 30, seed=5)
        _c, _ok, _rep, source = split(inst, "epsilon-biased", seed=2)
        assert source.seed_bits <= 2 * 32  # 2m = O(log(n/eps))

    def test_unknown_regime(self):
        inst = random_instance(4, 8, 3, seed=1)
        with pytest.raises(ConfigurationError):
            make_source("quantum", inst)

    def test_split_with_custom_source(self):
        inst = random_instance(10, 30, 12, seed=6)
        source = IndependentSource(seed=7)
        coloring, report = split_with_source(inst, source)
        assert report.randomness_bits == len(inst.v_side)

    def test_adversarial_overlap_instances(self):
        successes = 0
        for t in range(10):
            inst = shared_neighborhood_instance(40, 120, 24, seed=t)
            _c, ok, _r, _s = split(inst, "kwise", seed=5 * t)
            successes += ok
        assert successes >= 8


def random_hypergraph(num_vertices, sizes, num_edges, seed):
    rng = random.Random(seed)
    vertices = list(range(num_vertices))
    edges = [frozenset(rng.sample(vertices, rng.choice(sizes)))
             for _ in range(num_edges)]
    return Hypergraph(vertices, edges)


class TestDeterministicSmallEdges:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_valid_multicoloring(self, seed):
        hg = random_hypergraph(50, [2, 3, 4, 6], 30, seed)
        colors = deterministic_small_edges(hg)
        assert conflict_free_ok(hg, colors)

    def test_deterministic(self):
        hg = random_hypergraph(30, [2, 4], 20, 9)
        c1 = deterministic_small_edges(hg)
        c2 = deterministic_small_edges(hg)
        assert c1 == c2

    def test_color_budget_polylog(self):
        hg = random_hypergraph(60, [4], 40, 5)
        colors = deterministic_small_edges(hg)
        palette = {c for cs in colors.values() for c in cs}
        # O(s^2 log m) colors for s=4, m=40.
        assert len(palette) <= 4 * 4 * 4 * 8

    def test_size_bound_enforced(self):
        hg = random_hypergraph(30, [10], 5, 2)
        with pytest.raises(ConfigurationError):
            deterministic_small_edges(hg, max_size=8)

    def test_empty_hypergraph(self):
        hg = Hypergraph(vertices=[0, 1], edges=[])
        assert deterministic_small_edges(hg) == {0: set(), 1: set()}

    def test_singleton_edges(self):
        hg = Hypergraph(vertices=[0, 1], edges=[frozenset({0})])
        colors = deterministic_small_edges(hg)
        assert conflict_free_ok(hg, colors)


class TestMarkAndConquer:
    def test_small_classes_handled_deterministically(self):
        hg = random_hypergraph(40, [2, 3], 25, 3)
        source = KWiseSource(8, 40, 64, seed=1)
        colors, stats = mark_and_conquer(hg, source)
        assert stats["valid"]
        assert all(c["mode"] == "deterministic"
                   for c in stats["classes"].values())

    def test_large_edges_are_marked_down(self):
        rng = random.Random(4)
        vertices = list(range(120))
        small = [frozenset(rng.sample(vertices, 3)) for _ in range(10)]
        large = [frozenset(rng.sample(vertices, 80)) for _ in range(8)]
        hg = Hypergraph(vertices, small + large)
        source = KWiseSource(16, 120, 64, seed=2)
        colors, stats = mark_and_conquer(hg, source)
        assert stats["valid"]
        marked_classes = [c for c in stats["classes"].values()
                          if c["mode"] == "marked"]
        assert marked_classes
        for cls in marked_classes:
            assert all(s >= 1 for s in cls["marked_trace_sizes"])

    def test_randomness_is_kwise_only(self):
        rng = random.Random(5)
        vertices = list(range(100))
        large = [frozenset(rng.sample(vertices, 64)) for _ in range(5)]
        hg = Hypergraph(vertices, large)
        source = KWiseSource(16, 100, 64, seed=3)
        _colors, stats = mark_and_conquer(hg, source)
        assert source.bits_consumed > 0
        assert stats["valid"]
