"""GF(2^m) arithmetic: axioms, tables, and polynomial evaluation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.randomness.finite_field import (
    GF2m,
    inner_product_bits,
    min_degree_for,
    supported_degrees,
)

SMALL_DEGREES = [1, 2, 3, 4, 5, 8]


@pytest.fixture(params=SMALL_DEGREES)
def field(request):
    return GF2m(request.param)


def elements(m: int):
    return st.integers(min_value=0, max_value=(1 << m) - 1)


class TestAxioms:
    @given(data=st.data())
    def test_mul_commutative(self, field, data):
        a = data.draw(elements(field.m))
        b = data.draw(elements(field.m))
        assert field.mul(a, b) == field.mul(b, a)

    @given(data=st.data())
    def test_mul_associative(self, field, data):
        a = data.draw(elements(field.m))
        b = data.draw(elements(field.m))
        c = data.draw(elements(field.m))
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(data=st.data())
    def test_distributive(self, field, data):
        a = data.draw(elements(field.m))
        b = data.draw(elements(field.m))
        c = data.draw(elements(field.m))
        left = field.mul(a, field.add(b, c))
        right = field.add(field.mul(a, b), field.mul(a, c))
        assert left == right

    @given(data=st.data())
    def test_multiplicative_identity(self, field, data):
        a = data.draw(elements(field.m))
        assert field.mul(a, 1) == a

    @given(data=st.data())
    def test_additive_inverse_is_self(self, field, data):
        a = data.draw(elements(field.m))
        assert field.add(a, a) == 0

    @given(data=st.data())
    def test_inverse(self, field, data):
        a = data.draw(elements(field.m).filter(lambda x: x != 0))
        assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    @given(data=st.data())
    def test_closure(self, field, data):
        a = data.draw(elements(field.m))
        b = data.draw(elements(field.m))
        assert 0 <= field.mul(a, b) < field.order


class TestTables:
    """Table-based fast path must agree with carry-less multiplication."""

    @pytest.mark.parametrize("m", [2, 3, 4, 12, 13])
    def test_table_matches_slow(self, m):
        field = GF2m(m)
        assert field._log, f"expected tables for m={m}"
        step = max(1, field.order // 37)
        for a in range(1, field.order, step):
            for b in range(1, field.order, step):
                assert field.mul(a, b) == field._mul_slow(a, b)

    def test_aes_field_falls_back(self):
        # x is not primitive for the AES polynomial; the slow path must
        # still give the textbook product.
        field = GF2m(8)
        assert field.mul(0x53, 0xCA) == 0x01


class TestHelpers:
    def test_pow_matches_repeated_mul(self):
        field = GF2m(5)
        a = 7
        acc = 1
        for e in range(10):
            assert field.pow(a, e) == acc
            acc = field.mul(acc, a)

    def test_pow_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            GF2m(5).pow(3, -1)

    def test_eval_poly_horner(self):
        field = GF2m(4)
        coeffs = [3, 5, 7]  # 3 + 5x + 7x^2
        for x in range(field.order):
            expected = field.add(
                field.add(3, field.mul(5, x)),
                field.mul(7, field.mul(x, x)))
            assert field.eval_poly(coeffs, x) == expected

    def test_eval_poly_constant(self):
        field = GF2m(3)
        assert field.eval_poly([6], 5) == 6

    def test_eval_empty_poly_is_zero(self):
        assert GF2m(3).eval_poly([], 4) == 0

    def test_element_reduces(self):
        field = GF2m(4)
        assert field.element(0xFF) == 0xF

    def test_unsupported_degree(self):
        with pytest.raises(ConfigurationError):
            GF2m(64)

    def test_min_degree_for(self):
        assert min_degree_for(2) == 1
        assert min_degree_for(3) == 2
        assert min_degree_for(1 << 10) == 10
        assert min_degree_for((1 << 10) + 1) == 11

    def test_supported_degrees_sorted(self):
        degrees = supported_degrees()
        assert degrees == sorted(degrees)
        assert 16 in degrees

    @given(a=st.integers(0, 255), b=st.integers(0, 255))
    def test_inner_product_bits(self, a, b):
        expected = sum(
            ((a >> i) & 1) * ((b >> i) & 1) for i in range(8)) % 2
        assert inner_product_bits(a, b) == expected

    def test_eq_and_hash(self):
        assert GF2m(5) == GF2m(5)
        assert GF2m(5) != GF2m(6)
        assert hash(GF2m(5)) == hash(GF2m(5))
