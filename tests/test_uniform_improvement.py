"""Guess-and-double uniformity and the [ABCP96] improvement."""

import pytest

from repro.checkers import ColoringChecker, MISChecker
from repro.core.coloring import coloring_via_decomposition
from repro.core.decomposition import (
    deterministic_decomposition,
    improve_decomposition,
)
from repro.core.mis import mis_via_decomposition
from repro.core.uniform import run_uniform
from repro.errors import ConfigurationError
from repro.structures import Decomposition


def honest_mis(graph, claimed_n):
    """A non-uniform MIS that is simply always right (guess-agnostic)."""
    dec, _ = deterministic_decomposition(graph)
    return mis_via_decomposition(graph, dec)


def guess_sensitive_mis(graph, claimed_n):
    """Fails (empty output) whenever the guess undershoots the truth —
    the canonical behaviour Definition 2.1 permits."""
    if claimed_n < graph.n:
        from repro.sim.metrics import RunReport
        return {v: False for v in graph.nodes()}, RunReport(rounds=1,
                                                            accounted=True)
    return honest_mis(graph, claimed_n)


class TestRunUniform:
    def test_stops_at_first_certified_guess(self, gnp60):
        run = run_uniform(gnp60, honest_mis, MISChecker())
        assert run.final_guess == 2  # correct immediately, certified
        assert run.guesses_tried == [2]
        assert MISChecker().check(gnp60, run.outputs).ok

    def test_doubles_until_guess_reaches_n(self, gnp60):
        run = run_uniform(gnp60, guess_sensitive_mis, MISChecker())
        assert run.final_guess >= gnp60.n
        assert run.guesses_tried == [2 ** (i + 1) for i in
                                     range(len(run.guesses_tried))]
        assert MISChecker().check(gnp60, run.outputs).ok

    def test_never_returns_uncertified_output(self, gnp60):
        def always_wrong(graph, claimed_n):
            from repro.sim.metrics import RunReport
            return {v: False for v in graph.nodes()}, RunReport(rounds=1)

        with pytest.raises(ConfigurationError):
            run_uniform(gnp60, always_wrong, MISChecker())

    def test_cost_accumulates_over_guesses(self, gnp60):
        run = run_uniform(gnp60, guess_sensitive_mis, MISChecker())
        # One algorithm round + one checker round per failed guess, plus
        # the successful run: strictly more than a single invocation.
        single = honest_mis(gnp60, gnp60.n)[1].rounds
        assert run.report.rounds > single

    def test_works_for_coloring_too(self, dense40):
        def algo(graph, claimed_n):
            dec, _ = deterministic_decomposition(graph)
            return coloring_via_decomposition(graph, dec)

        checker = ColoringChecker(dense40.max_degree() + 1)
        run = run_uniform(dense40, algo, checker)
        assert checker.check(dense40, run.outputs).ok

    def test_validates_initial_guess(self, gnp60):
        with pytest.raises(ConfigurationError):
            run_uniform(gnp60, honest_mis, MISChecker(), initial_guess=0)


class TestImproveDecomposition:
    def test_refines_trivial_decomposition(self, gnp60):
        coarse = Decomposition.single_cluster(gnp60)
        refined, report = improve_decomposition(gnp60, coarse)
        assert refined.is_valid(gnp60)
        import math
        logn = math.ceil(math.log2(gnp60.n))
        assert refined.num_colors() <= logn + 1
        assert refined.max_strong_diameter(gnp60) <= 2 * logn

    def test_rounds_scale_with_coarse_parameters(self, gnp60):
        tight = Decomposition.single_cluster(gnp60)
        _r1, rep1 = improve_decomposition(gnp60, tight)
        fine, _ = deterministic_decomposition(gnp60)
        _r2, rep2 = improve_decomposition(gnp60, fine)
        # The trivial single-cluster input has the larger diameter, so
        # the accounted [ABCP96] cost is larger.
        assert rep1.rounds >= rep2.rounds

    def test_rejects_invalid_coarse_input(self, gnp60):
        broken = Decomposition(cluster_of={0: 0}, color_of={0: 0})
        with pytest.raises(ConfigurationError):
            improve_decomposition(gnp60, broken)
