"""Graph generators and identifier schemes."""

import math

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graphs import (
    FAMILIES,
    SCHEMES,
    assign,
    caterpillar,
    cluster_of_cliques,
    complete_tree,
    dumbbell,
    expander,
    gnp,
    grid,
    make,
    path,
    random_regular,
    random_tree,
)


class TestGenerators:
    @given(n=st.integers(2, 60))
    def test_path_and_cycle_shapes(self, n):
        p = path(n)
        assert p.number_of_nodes() == n
        assert p.number_of_edges() == n - 1
        if n >= 3:
            from repro.graphs import cycle
            c = cycle(n)
            assert c.number_of_edges() == n

    def test_grid_shape(self):
        g = grid(4, 5)
        assert g.number_of_nodes() == 20
        assert nx.is_connected(g)

    @given(n=st.integers(4, 50), seed=st.integers(0, 5))
    def test_gnp_connected(self, n, seed):
        g = gnp(n, 1.5 / n, seed=seed)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == n

    @given(seed=st.integers(0, 5))
    def test_random_regular_degrees(self, seed):
        g = random_regular(20, 3, seed=seed)
        assert all(d == 3 for _v, d in g.degree())

    def test_random_regular_validates_parity(self):
        with pytest.raises(ConfigurationError):
            random_regular(5, 3)

    @given(n=st.integers(1, 40), seed=st.integers(0, 5))
    def test_random_tree_is_tree(self, n, seed):
        t = random_tree(n, seed=seed)
        assert t.number_of_nodes() == n
        assert nx.is_tree(t) or n == 1

    def test_complete_tree(self):
        t = complete_tree(2, 3)
        assert nx.is_tree(t)
        assert t.number_of_nodes() == 15

    def test_caterpillar(self):
        c = caterpillar(spine=4, legs=2)
        assert c.number_of_nodes() == 4 + 8
        assert nx.is_tree(c)

    def test_cluster_of_cliques(self):
        g = cluster_of_cliques(3, 4)
        assert g.number_of_nodes() == 12
        assert nx.is_connected(g)
        # Each clique is complete.
        assert g.number_of_edges() == 3 * 6 + 2

    def test_cluster_of_cliques_star(self):
        g = cluster_of_cliques(4, 3, chain=False)
        assert nx.is_connected(g)

    def test_dumbbell(self):
        g = dumbbell(side=4, bar=3)
        assert nx.is_connected(g)
        assert g.number_of_nodes() == 11
        assert nx.diameter(g) >= 4

    def test_expander_shape(self):
        g = expander(40, seed=1)
        assert nx.is_connected(g)
        assert g.number_of_nodes() >= 40
        assert max(d for _, d in g.degree()) <= 8  # Margulis degree bound
        assert not any(u == v for u, v in g.edges())  # self-loops dropped
        # Expanders have logarithmic diameter, far below path-like families.
        assert nx.diameter(g) <= 2 * math.ceil(math.log2(g.number_of_nodes()))

    def test_expander_deterministic(self):
        assert nx.utils.graphs_equal(expander(30), expander(30))

    def test_new_named_families(self):
        for name in ("expander", "regular-4", "caterpillar"):
            g = make(name, 40, seed=3)
            assert nx.is_connected(g), name
        assert all(d == 4 for _, d in make("regular-4", 40, seed=3).degree())
        cat = make("caterpillar", 40, seed=0)
        # A caterpillar: removing leaves yields a path (degree <= 2).
        spine = cat.subgraph(v for v, d in cat.degree() if d > 1)
        assert max(d for _, d in spine.degree()) <= 2 + 1  # spine + one leg edge

    def test_named_families_all_connected(self):
        for name in FAMILIES:
            g = make(name, 40, seed=2)
            assert nx.is_connected(g), name
            assert g.number_of_nodes() >= 10, name

    def test_make_unknown_family(self):
        with pytest.raises(ConfigurationError):
            make("hypercube", 8)

    def test_generator_validation(self):
        with pytest.raises(ConfigurationError):
            path(0)
        with pytest.raises(ConfigurationError):
            grid(0, 3)
        with pytest.raises(ConfigurationError):
            gnp(10, 1.5)
        with pytest.raises(ConfigurationError):
            caterpillar(0, 1)
        with pytest.raises(ConfigurationError):
            dumbbell(0, 1)
        with pytest.raises(ConfigurationError):
            cluster_of_cliques(0, 3)


class TestIdSchemes:
    def test_all_schemes_give_unique_ids(self):
        raw = make("gnp-sparse", 30, seed=1)
        for scheme in SCHEMES:
            g = assign(raw, scheme, seed=3)
            uids = [g.uid(v) for v in g.nodes()]
            assert len(set(uids)) == g.n, scheme

    def test_sequential_ids(self):
        g = assign(make("path", 5), "sequential")
        assert sorted(g.uid(v) for v in g.nodes()) == [1, 2, 3, 4, 5]

    def test_adversarial_ids_follow_bfs(self):
        g = assign(make("path", 8), "adversarial")
        # BFS from node 0 on a path is the path order itself.
        assert [g.uid(v) for v in g.nodes()] == list(range(1, 9))

    def test_spread_ids_have_uniform_bit_length(self):
        g = assign(make("path", 32), "spread", seed=4)
        lengths = {g.uid(v).bit_length() for v in g.nodes()}
        assert max(lengths) - min(lengths) <= 1

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            assign(make("path", 4), "quantum")

    def test_random_ids_deterministic_per_seed(self):
        raw = make("path", 10)
        a = assign(raw, "random", seed=5)
        b = assign(raw, "random", seed=5)
        assert [a.uid(v) for v in a.nodes()] == [b.uid(v) for v in b.nodes()]
