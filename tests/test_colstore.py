"""The columnar trial store: round trips, crash windows, merge refusal.

The load-bearing guarantees, each pinned here:

* compaction is lossless — ``TrialStore -> ColumnarStore -> TrialStore``
  reproduces the original shard files byte for byte, content-addressed
  keys included — and every storable value type survives, including the
  dtype boundaries (int64 min/max in packed columns, ints beyond int64
  rerouted to the ragged sidecar rather than silently wrapping);
* a torn final flush never loses or duplicates a trial: both crash
  windows of the segment commit protocol (stray unlisted segment
  directory; manifest-listed segment with an untruncated tail) recover
  on load to the exact same record stream;
* ``merge_stores`` refuses conflicting stores loudly, naming the first
  conflicting key and both record digests, on every merge path
  (record-wise and the columnar bulk-adoption fast path);
* queries touch only the columns they filter on, and ``aggregate`` is
  row-for-row identical to the JSONL path's ``runner.aggregate``;
* the store drops into ``run_trials`` unchanged: a replayed sweep is
  served entirely from cache.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.errors import ConfigurationError
from repro.sim.batch import (
    ColumnarStore,
    TrialResult,
    TrialSpec,
    TrialStore,
    aggregate,
    compact,
    decompact,
    merge_stores,
    open_store,
    record_digest,
    run_trials,
    select_results,
    spec_key,
    store_format,
    verify_migration,
)
from repro.sim.batch.colstore import DEFAULT_FLUSH_ROWS, MANIFEST_NAME, TAIL_NAME

INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)


def _probe_task(spec: TrialSpec) -> TrialResult:
    """Deterministic task with every storable data type (picklable)."""
    return TrialResult(spec, spec.seed % 2 == 0, {
        "rounds": spec.seed + 1,
        "third": spec.seed / 3.0,
        "family": spec.family,
        "flag": spec.seed > 0,
        "pair": (spec.n, spec.family),
        "nothing": None,
    })


def _poison_task(spec: TrialSpec) -> TrialResult:
    """A task that must never run — proves replays come from the cache."""
    raise AssertionError(f"task executed for {spec} despite a full cache")


def _store_bytes(root: str) -> dict:
    """Every file under ``root`` as relpath -> bytes, for exact comparison."""
    contents = {}
    for dirpath, _dirs, files in os.walk(root):
        for name in files:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as handle:
                contents[os.path.relpath(path, root)] = handle.read()
    return contents


def _fill(store, count: int, task: str = "t", family: str = "cycle"):
    """``count`` probe results into ``store``; returns their specs."""
    specs = [TrialSpec.of(family, 8 * (i % 3 + 1), i) for i in range(count)]
    for spec in specs:
        store.put(task, spec, _probe_task(spec))
    return specs


class TestRoundTrip:
    def test_put_get_is_identity_with_exact_types(self, tmp_path):
        store = ColumnarStore(tmp_path)
        spec = TrialSpec.of("cycle", 12, 3, window=(2, 5))
        store.put("t", spec, _probe_task(spec))
        store.flush()
        cached = ColumnarStore(tmp_path).get("t", spec)
        assert cached == _probe_task(spec)
        assert isinstance(cached.data["rounds"], int)
        assert isinstance(cached.data["flag"], bool)
        assert isinstance(cached.data["pair"], tuple)
        assert isinstance(cached.data["third"], float)
        assert cached.data["nothing"] is None

    def test_compact_decompact_reproduces_shard_bytes(self, tmp_path):
        """The headline migration guarantee: an exact byte round trip."""
        source = TrialStore(tmp_path / "jsonl")
        _fill(source, 7, task="a")
        _fill(source, 5, task="b", family="path")
        source.close()
        compact(tmp_path / "jsonl", tmp_path / "col", verify=True).close()
        decompact(tmp_path / "col", tmp_path / "back", verify=True).close()
        original = _store_bytes(str(tmp_path / "jsonl"))
        regenerated = _store_bytes(str(tmp_path / "back"))
        assert original == regenerated

    def test_migration_preserves_content_addressed_keys(self, tmp_path):
        source = TrialStore(tmp_path / "jsonl")
        specs = _fill(source, 4)
        compact(tmp_path / "jsonl", tmp_path / "col").close()
        migrated = ColumnarStore(tmp_path / "col")
        for spec in specs:
            assert spec_key("t", spec) in migrated
        assert verify_migration(source, migrated) == 4

    def test_compaction_refuses_nonfresh_destination(self, tmp_path):
        _fill(TrialStore(tmp_path / "jsonl"), 2)
        _fill(ColumnarStore(tmp_path / "col"), 1, task="other")
        with pytest.raises(ConfigurationError, match="fresh"):
            compact(tmp_path / "jsonl", tmp_path / "col")


class TestDtypeBoundaries:
    def test_int64_extremes_pack_and_round_trip(self, tmp_path):
        """Values at the exact int64 edges live in packed columns."""
        store = ColumnarStore(tmp_path / "col")
        spec = TrialSpec.of("cycle", 8, 0)
        result = TrialResult(spec, True,
                             {"hi": INT64_MAX, "lo": INT64_MIN})
        store.put("t", spec, result)
        store.flush()
        reloaded = ColumnarStore(tmp_path / "col")
        [record] = list(reloaded.records())
        assert record["data"] == {"hi": INT64_MAX, "lo": INT64_MIN}
        assert reloaded.get("t", spec) == result
        entry = reloaded._manifest["segments"][0]
        assert set(entry["metrics"]) == {"hi", "lo"}

    def test_beyond_int64_rides_the_sidecar_exactly(self, tmp_path):
        """2^63 would wrap in an int64 column; it must stay ragged."""
        store = ColumnarStore(tmp_path / "col")
        spec = TrialSpec.of("cycle", 8, 0)
        big = INT64_MAX + 1
        store.put("t", spec, TrialResult(spec, True,
                                         {"total_bits": big,
                                          "negative": INT64_MIN - 1}))
        store.flush()
        reloaded = ColumnarStore(tmp_path / "col")
        [record] = list(reloaded.records())
        assert record["data"]["total_bits"] == big
        assert record["data"]["negative"] == INT64_MIN - 1
        entry = reloaded._manifest["segments"][0]
        assert entry["metrics"] == {}
        assert sorted(entry["extras"]) == ["negative", "total_bits"]

    def test_mixed_int_float_field_stays_ragged(self, tmp_path):
        """A field that is int in one row and float in another cannot
        become a typed column without changing the values' types."""
        store = ColumnarStore(tmp_path / "col")
        for seed, value in ((0, 3), (1, 3.5)):
            spec = TrialSpec.of("cycle", 8, seed)
            store.put("t", spec, TrialResult(spec, True, {"cost": value}))
        store.flush()
        reloaded = ColumnarStore(tmp_path / "col")
        values = [r["data"]["cost"] for r in reloaded.records()]
        assert values == [3, 3.5]
        assert [type(v) for v in values] == [int, float]

    def test_overflowing_spec_n_is_refused(self, tmp_path):
        """Spec columns are unconditionally int64 — a spec beyond that
        range must be refused up front, not silently wrapped."""
        store = ColumnarStore(tmp_path / "col")
        spec = TrialSpec.of("cycle", INT64_MAX + 1, 0)
        with pytest.raises(ConfigurationError, match="int64"):
            store.put("t", spec, TrialResult(spec, True, {"rounds": 1}))


class TestEmptyAndSingle:
    def test_empty_store_round_trips(self, tmp_path):
        store = ColumnarStore(tmp_path / "col")
        assert len(store) == 0
        assert list(store.records()) == []
        assert store.select() == []
        assert store.aggregate() == []
        store.flush()  # no-op: no tail rows, no segment written
        assert ColumnarStore(tmp_path / "col")._manifest["segments"] == []

    def test_empty_migrations(self, tmp_path):
        TrialStore(tmp_path / "jsonl").close()
        migrated = compact(tmp_path / "jsonl", tmp_path / "col", verify=True)
        assert len(migrated) == 0
        back = decompact(tmp_path / "col", tmp_path / "back", verify=True)
        assert len(back) == 0

    def test_single_trial_store(self, tmp_path):
        store = ColumnarStore(tmp_path / "col")
        [spec] = _fill(store, 1)
        store.flush()
        reloaded = ColumnarStore(tmp_path / "col")
        assert len(reloaded) == 1
        assert reloaded.get("t", spec) == _probe_task(spec)
        assert reloaded.select(family="cycle", seed=0) == [_probe_task(spec)]
        decompact(tmp_path / "col", tmp_path / "back", verify=True).close()

    def test_merge_of_empty_sources_is_a_noop(self, tmp_path):
        dest = ColumnarStore(tmp_path / "dest")
        _fill(dest, 2)
        dest.flush()
        before = list(dest.records())
        stats = merge_stores(dest, [ColumnarStore(tmp_path / "empty-col"),
                                    TrialStore(tmp_path / "empty-jl")])
        assert stats == {"added": 0, "duplicate": 0}
        assert list(dest.records()) == before


class TestTornFlush:
    """The two crash windows of the flush commit protocol."""

    def _store_with_pending_tail(self, root, count=3):
        store = ColumnarStore(root, flush_rows=DEFAULT_FLUSH_ROWS)
        _fill(store, count)
        store.close()  # rows durable in the tail, nothing packed yet
        return count

    def test_stray_unlisted_segment_is_invisible(self, tmp_path):
        """Crash between segment rename and manifest write: the segment
        directory exists but the manifest does not list it, so every
        row is still (only) in the tail."""
        root = tmp_path / "col"
        count = self._store_with_pending_tail(root)
        pre = _store_bytes(str(root))
        flushed = ColumnarStore(root)
        flushed.flush()
        expected = list(ColumnarStore(root).records())
        # Rebuild the torn state: packed segment dir present, but
        # manifest and tail as they were before the flush.
        torn = tmp_path / "torn"
        shutil.copytree(root, torn)
        for relpath, payload in pre.items():
            with open(os.path.join(torn, relpath), "wb") as handle:
                handle.write(payload)
        recovered = ColumnarStore(torn)
        assert len(recovered) == count
        assert recovered._manifest["segments"] == []
        assert len(recovered._tail) == count
        # Re-flushing packs the tail, overwriting the stray directory.
        recovered.flush()
        assert list(ColumnarStore(torn).records()) == expected

    def test_listed_segment_with_untruncated_tail_deduplicates(self, tmp_path):
        """Crash between manifest write and tail truncate: every packed
        row is in both places; loading keeps exactly one copy."""
        root = tmp_path / "col"
        count = self._store_with_pending_tail(root)
        with open(root / TAIL_NAME, "rb") as handle:
            tail_before = handle.read()
        flushed = ColumnarStore(root)
        flushed.flush()
        expected = list(ColumnarStore(root).records())
        with open(root / TAIL_NAME, "wb") as handle:
            handle.write(tail_before)  # un-truncate: rows now duplicated
        recovered = ColumnarStore(root)
        assert len(recovered) == count
        assert recovered._tail == []
        assert list(recovered.records()) == expected

    def test_untruncated_tail_with_diverging_payload_is_corruption(
            self, tmp_path):
        """Same window, but a tail row disagreeing with its packed copy
        is not recovery — it must stop the load."""
        root = tmp_path / "col"
        store = ColumnarStore(root)
        [spec] = _fill(store, 1)
        store.flush()
        store.close()
        evil = dict(next(ColumnarStore(root).records()))
        evil["data"] = dict(evil["data"], rounds=999)
        with open(root / TAIL_NAME, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(evil, sort_keys=True) + "\n")
        with pytest.raises(ConfigurationError, match="corrupt"):
            ColumnarStore(root)

    def test_torn_final_tail_line_is_tolerated(self, tmp_path):
        """A half-written last tail line (power loss mid-append) is
        skipped on load, exactly like the JSONL store's shards."""
        root = tmp_path / "col"
        count = self._store_with_pending_tail(root)
        with open(root / TAIL_NAME, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "task": "t", "key": "dead')
        recovered = ColumnarStore(root)
        assert len(recovered) == count


class TestMergeRefusal:
    def _conflicting_pair(self, tmp_path, fmt_a, fmt_b):
        """Two stores agreeing on a key but not its payload; returns
        (dest, source, key, digest_a, digest_b)."""
        spec = TrialSpec.of("cycle", 8, 0)
        key = spec_key("t", spec)
        a = open_store(tmp_path / "a", fmt_a)
        a.put("t", spec, TrialResult(spec, True, {"rounds": 1}))
        b = open_store(tmp_path / "b", fmt_b)
        b.put("t", spec, TrialResult(spec, True, {"rounds": 2}))
        for store in (a, b):
            flush = getattr(store, "flush", None)
            if flush:
                flush()
        digest_a = record_digest(a._get_record(key))
        digest_b = record_digest(b._get_record(key))
        assert digest_a != digest_b
        return a, b, key, digest_a, digest_b

    @pytest.mark.parametrize("fmt_a,fmt_b", [
        ("jsonl", "jsonl"),
        ("jsonl", "columnar"),
        ("columnar", "jsonl"),
        ("columnar", "columnar"),  # exercises the bulk-adoption path
    ])
    def test_conflict_names_key_and_both_digests(self, tmp_path, fmt_a, fmt_b):
        """Regression: the refusal must identify the first conflicting
        key and the digest of both payloads, so two operators can tell
        whose store diverged without replaying anything."""
        dest, source, key, digest_a, digest_b = self._conflicting_pair(
            tmp_path, fmt_a, fmt_b)
        with pytest.raises(ConfigurationError) as exc:
            merge_stores(dest, [source])
        message = str(exc.value)
        assert key in message
        assert digest_a in message
        assert digest_b in message
        assert "disagree" in message

    def test_identical_records_merge_as_duplicates(self, tmp_path):
        spec = TrialSpec.of("cycle", 8, 0)
        for name in ("a", "b"):
            store = ColumnarStore(tmp_path / name)
            store.put("t", spec, _probe_task(spec))
            store.flush()
        dest = ColumnarStore(tmp_path / "a")
        stats = merge_stores(dest, [tmp_path / "b"])
        assert stats == {"added": 0, "duplicate": 1}
        assert len(dest) == 1

    def test_cross_format_merges_agree(self, tmp_path):
        """jsonl+jsonl and columnar+columnar merges of the same halves
        must produce the same record stream."""
        specs = [TrialSpec.of("cycle", 8, seed) for seed in range(6)]
        jl_a, jl_b = TrialStore(tmp_path / "jl-a"), TrialStore(tmp_path / "jl-b")
        for store, chunk in ((jl_a, specs[:3]), (jl_b, specs[3:])):
            for spec in chunk:
                store.put("t", spec, _probe_task(spec))
        compact(tmp_path / "jl-a", tmp_path / "col-a").close()
        compact(tmp_path / "jl-b", tmp_path / "col-b").close()
        jl_dest = TrialStore(tmp_path / "jl-merged")
        merge_stores(jl_dest, [tmp_path / "jl-a", tmp_path / "jl-b"])
        col_dest = ColumnarStore(tmp_path / "col-merged")
        merge_stores(col_dest, [tmp_path / "col-a", tmp_path / "col-b"])
        assert list(jl_dest.records()) == list(col_dest.records())


class TestQueries:
    def _grid_store(self, tmp_path):
        store = ColumnarStore(tmp_path / "col", flush_rows=4)
        for family in ("cycle", "path"):
            for seed in range(4):
                spec = TrialSpec.of(family, 8, seed)
                store.put("grid", spec, _probe_task(spec))
        store.flush()
        return ColumnarStore(tmp_path / "col", flush_rows=4)

    def test_select_filters_and_preserves_order(self, tmp_path):
        store = self._grid_store(tmp_path)
        hits = store.select(family="path")
        assert [r.spec.seed for r in hits] == [0, 1, 2, 3]
        assert all(r.spec.family == "path" for r in hits)
        assert store.select(family="path", seed=2) == \
            [_probe_task(TrialSpec.of("path", 8, 2))]
        assert store.select(family="no-such-family") == []

    def test_select_touches_only_filter_columns(self, tmp_path):
        """The laziness claim: a miss never loads metric columns, and a
        seed filter never loads the family column."""
        store = self._grid_store(tmp_path)
        [segment] = store._segments[:1]
        assert segment.loaded_columns() == ["key.npy"]  # index build only
        store.select(family="path", n=999)
        assert segment.loaded_columns() == ["family.npy", "key.npy", "n.npy"]

    def test_aggregate_matches_jsonl_path_exactly(self, tmp_path):
        store = self._grid_store(tmp_path)
        for kwargs in ({}, {"by": ("family", "seed")},
                       {"family": "cycle"}, {"seed": 1}):
            by = kwargs.pop("by", ("family", "n"))
            assert store.aggregate(by=by, **kwargs) == \
                aggregate(store.select(**kwargs), by=by)

    def test_select_results_is_format_agnostic(self, tmp_path):
        store = self._grid_store(tmp_path)
        decompact(tmp_path / "col", tmp_path / "jl").close()
        jsonl = TrialStore(tmp_path / "jl")
        for kwargs in ({"family": "cycle"}, {"seed": 3}, {"n": 8}):
            assert select_results(store, **kwargs) == \
                select_results(jsonl, **kwargs)


class TestOpenStore:
    def test_autodetects_both_formats(self, tmp_path):
        _fill(TrialStore(tmp_path / "jl"), 1)
        _fill(ColumnarStore(tmp_path / "col"), 1)
        assert store_format(tmp_path / "jl") == "jsonl"
        assert store_format(tmp_path / "col") == "columnar"
        assert isinstance(open_store(tmp_path / "jl"), TrialStore)
        assert isinstance(open_store(tmp_path / "col"), ColumnarStore)
        assert store_format(tmp_path / "fresh") is None
        assert isinstance(open_store(tmp_path / "fresh"), TrialStore)

    def test_contradicting_format_raises(self, tmp_path):
        """Opening a columnar store as jsonl would 'work' while
        computing everything cold — it must refuse instead."""
        _fill(ColumnarStore(tmp_path / "col"), 1)
        with pytest.raises(ConfigurationError, match="columnar"):
            open_store(tmp_path / "col", "jsonl")
        _fill(TrialStore(tmp_path / "jl"), 1)
        with pytest.raises(ConfigurationError, match="jsonl"):
            open_store(tmp_path / "jl", "columnar")
        with pytest.raises(ConfigurationError, match="unknown store format"):
            open_store(tmp_path / "jl", "parquet")


class TestRunTrialsIntegration:
    def test_sweep_then_replay_is_fully_cached(self, tmp_path):
        specs = [TrialSpec.of("cycle", 8, seed) for seed in range(5)]
        store = ColumnarStore(tmp_path / "col")
        first = run_trials(_probe_task, specs, workers=1, store=store,
                           task_name="t")
        store.close()
        # run_trials flushes at sweep end: rows are packed, tail empty.
        reloaded = ColumnarStore(tmp_path / "col")
        assert reloaded._tail == []
        assert len(reloaded) == len(specs)
        replay = run_trials(_poison_task, specs, workers=1, store=reloaded,
                            task_name="t")
        assert replay == first

    def test_mid_sweep_resume_matches_uninterrupted(self, tmp_path):
        specs = [TrialSpec.of("cycle", 8, seed) for seed in range(6)]
        full = run_trials(_probe_task, specs, workers=1,
                          store=ColumnarStore(tmp_path / "full"),
                          task_name="t")
        partial = ColumnarStore(tmp_path / "partial")
        run_trials(_probe_task, specs[:3], workers=1, store=partial,
                   task_name="t")
        resumed = run_trials(_probe_task, specs, workers=1,
                             store=ColumnarStore(tmp_path / "partial"),
                             task_name="t")
        assert resumed == full
        assert list(ColumnarStore(tmp_path / "partial").records()) == \
            list(ColumnarStore(tmp_path / "full").records())
