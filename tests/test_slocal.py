"""The SLOCAL simulator: views, locality enforcement, greedy algorithms."""

import pytest

from repro.errors import ConfigurationError, ModelViolation
from repro.sim import SLocalSimulator


class TestViews:
    def test_view_radius_is_enforced_by_construction(self, path9):
        seen = {}

        def decide(view):
            seen[view.center] = set(view.nodes)
            return True

        SLocalSimulator(path9, locality=2, decide=decide).run()
        for v, visible in seen.items():
            expected = set(path9.ball(v, 2))
            assert visible == expected

    def test_view_contains_uids_and_topology(self, cycle12):
        def decide(view):
            assert view.center in view.uids
            for a, b in view.topology:
                assert a in view.nodes and b in view.nodes
            return True

        SLocalSimulator(cycle12, locality=1, decide=decide).run()

    def test_records_accumulate_in_order(self, path9):
        def decide(view):
            processed = [u for u in view.nodes if u in view.records]
            return len(processed)

        result = SLocalSimulator(path9, locality=1, decide=decide).run(
            order=list(range(9)))
        # Node 0 sees nothing processed; node 1 sees node 0; etc.
        assert result.outputs[0] == 0
        assert result.outputs[1] == 1

    def test_locality_zero_sees_only_self(self, path9):
        def decide(view):
            return sorted(view.nodes) == [view.center]

        result = SLocalSimulator(path9, locality=0, decide=decide).run()
        assert all(result.outputs.values())


class TestValidation:
    def test_order_must_be_permutation(self, path9):
        sim = SLocalSimulator(path9, locality=1, decide=lambda v: True)
        with pytest.raises(ConfigurationError):
            sim.run(order=[0, 1, 2])
        with pytest.raises(ConfigurationError):
            sim.run(order=list(range(9)) + [0])

    def test_none_record_rejected(self, path9):
        sim = SLocalSimulator(path9, locality=1, decide=lambda v: None)
        with pytest.raises(ModelViolation):
            sim.run()

    def test_negative_locality_rejected(self, path9):
        with pytest.raises(ConfigurationError):
            SLocalSimulator(path9, locality=-1, decide=lambda v: True)

    def test_report_is_accounted_slocal(self, path9):
        result = SLocalSimulator(path9, locality=1,
                                 decide=lambda v: True).run()
        assert result.report.model == "SLOCAL"
        assert result.report.accounted
        assert result.report.rounds == 9


class TestGreedyColoring:
    def test_greedy_coloring_with_locality_one(self, dense40):
        """(Δ+1)-coloring has a locality-1 SLOCAL algorithm [GKM17]."""

        def decide(view):
            used = {
                view.records[u]
                for u, d in view.nodes.items()
                if d == 1 and u in view.records
            }
            color = 0
            while color in used:
                color += 1
            return color

        result = SLocalSimulator(dense40, locality=1, decide=decide).run()
        colors = result.outputs
        for u, v in dense40.edges():
            assert colors[u] != colors[v]
        assert max(colors.values()) <= dense40.max_degree()
