"""FastEngine must be observationally identical to SyncEngine.

The batch engine is only allowed to be *faster*: for any node program,
graph, model, and randomness seed, outputs and the full cost report
(rounds, messages, total/max bits, randomness bits) must match the
reference engine bit for bit. These tests sweep every named graph
family in both LOCAL and CONGEST with deterministic and randomized
programs, plus the engine's edge-case semantics (lying about n,
uniformity, bandwidth and addressing violations).
"""

from __future__ import annotations

import dataclasses

import pytest

from helpers import family_graphs
from repro.core.mis import LubyMIS, is_valid_mis
from repro.errors import BandwidthExceeded, ConfigurationError, ModelViolation
from repro.randomness import IndependentSource
from repro.sim import CONGEST, LOCAL, FastEngine, SyncEngine
from repro.sim.batch import CSRGraph
from repro.sim.node import NodeProgram
from repro.sim.primitives import BFSTree, FloodMin


def run_both(graph, factory, model, seed=None, **kwargs):
    """Run both engines with independent-but-identical sources."""
    src1 = IndependentSource(seed=seed) if seed is not None else None
    src2 = IndependentSource(seed=seed) if seed is not None else None
    ref = SyncEngine(graph, factory, source=src1, model=model, **kwargs).run()
    fast = FastEngine(graph, factory, source=src2, model=model, **kwargs).run()
    return ref, fast


def assert_identical(ref, fast):
    assert fast.outputs == ref.outputs
    assert dataclasses.asdict(fast.report) == dataclasses.asdict(ref.report)


@pytest.mark.parametrize("model", [LOCAL, CONGEST])
class TestEquivalenceAcrossFamilies:
    def test_flood_min(self, model):
        for _name, g in family_graphs(36, seed=11):
            assert_identical(*run_both(g, lambda _v: FloodMin(6), model))

    def test_bfs_tree(self, model):
        for _name, g in family_graphs(36, seed=12):
            factory = lambda _v: BFSTree({0, 5}, g.n)  # noqa: E731
            assert_identical(*run_both(g, factory, model))

    def test_luby_mis(self, model):
        for _name, g in family_graphs(36, seed=13):
            ref, fast = run_both(g, lambda _v: LubyMIS(), model, seed=97)
            assert_identical(ref, fast)
            assert is_valid_mis(g, fast.outputs)


class TestEquivalenceSemantics:
    def test_lie_about_n(self, gnp60):
        ref, fast = run_both(gnp60, lambda _v: LubyMIS(), CONGEST,
                             seed=5, n_override=4 * gnp60.n)
        assert_identical(ref, fast)

    def test_n_override_below_n_rejected(self, gnp60):
        with pytest.raises(ConfigurationError):
            FastEngine(gnp60, lambda _v: FloodMin(2), n_override=gnp60.n - 1)

    def test_uniform_denies_n(self, path9):
        class ReadN(NodeProgram):
            def init(self, ctx):
                ctx.n  # must raise
                ctx.finish(None)

        with pytest.raises(ModelViolation):
            FastEngine(path9, lambda _v: ReadN(), uniform=True).run()

    def test_bandwidth_enforced_on_broadcast(self, path9):
        class BigBroadcast(NodeProgram):
            def init(self, ctx):
                return {NodeProgram.BROADCAST: "x" * 4096}

        with pytest.raises(BandwidthExceeded):
            FastEngine(path9, lambda _v: BigBroadcast(), model=CONGEST).run()
        # ... but LOCAL allows it, exactly like the reference engine.
        ref, fast = run_both(path9, lambda _v: _FinishAfterBig(), LOCAL)
        assert_identical(ref, fast)

    def test_bandwidth_enforced_on_unicast(self, path9):
        class BigUnicast(NodeProgram):
            def init(self, ctx):
                if ctx.neighbors:
                    return {ctx.neighbors[0]: "y" * 4096}
                ctx.finish(None)
                return {}

        with pytest.raises(BandwidthExceeded):
            FastEngine(path9, lambda _v: BigUnicast(), model=CONGEST).run()

    def test_non_neighbor_send_rejected(self, path9):
        class BadSend(NodeProgram):
            def init(self, ctx):
                return {10 ** 9: 1}

        with pytest.raises(ModelViolation):
            FastEngine(path9, lambda _v: BadSend()).run()

    def test_mixed_broadcast_and_unicast(self, cycle12):
        class MixedSend(NodeProgram):
            def init(self, ctx):
                # Broadcast plus an overriding unicast to one neighbor:
                # the engines must dedup to one message per target.
                return {NodeProgram.BROADCAST: 1, ctx.neighbors[0]: 2}

            def step(self, ctx, round_index, inbox):
                ctx.finish(sorted(inbox.items()))
                return {}

        assert_identical(*run_both(cycle12, lambda _v: MixedSend(), CONGEST))

    @pytest.mark.parametrize("broadcast_first", [True, False])
    def test_mixed_outbox_explicit_wins_either_key_order(
            self, cycle12, broadcast_first):
        """Explicit targets override the broadcast payload regardless of
        dict insertion order — the semantics are pinned, not an accident
        of iteration order, and identical in both engines."""

        class MixedSend(NodeProgram):
            def init(self, ctx):
                if broadcast_first:
                    return {NodeProgram.BROADCAST: 1, ctx.neighbors[0]: 2}
                return {ctx.neighbors[0]: 2, NodeProgram.BROADCAST: 1}

            def step(self, ctx, round_index, inbox):
                ctx.finish(sorted(inbox.items()))
                return {}

        ref, fast = run_both(cycle12, lambda _v: MixedSend(), CONGEST)
        assert_identical(ref, fast)
        # On a cycle every node's first neighbor sends it the explicit
        # payload; the other neighbor's broadcast still arrives.
        for v, received in fast.outputs.items():
            payloads = dict(received)
            explicit_senders = [u for u in cycle12.neighbors(v)
                                if cycle12.neighbors(u)[0] == v]
            for u in explicit_senders:
                assert payloads[u] == 2
            for u in set(cycle12.neighbors(v)) - set(explicit_senders):
                assert payloads[u] == 1

    def test_reusable_csr_across_runs(self, gnp60):
        csr = CSRGraph.from_graph(gnp60)
        first = FastEngine(gnp60, lambda _v: FloodMin(4), csr=csr).run()
        second = FastEngine(gnp60, lambda _v: FloodMin(4), csr=csr).run()
        assert first.outputs == second.outputs
        ref = SyncEngine(gnp60, lambda _v: FloodMin(4)).run()
        assert_identical(ref, second)

    def test_csr_size_mismatch_rejected(self, gnp60, path9):
        with pytest.raises(ConfigurationError):
            FastEngine(gnp60, lambda _v: FloodMin(1),
                       csr=CSRGraph.from_graph(path9))

    def test_csr_from_different_graph_rejected(self):
        from repro.graphs import assign, make

        # Same n, different topology/UIDs: the cached-CSR sanity check
        # must reject it instead of silently simulating the wrong graph.
        g1 = assign(make("gnp-sparse", 30, seed=1), "random", seed=1)
        g2 = assign(make("gnp-sparse", 30, seed=2), "random", seed=2)
        with pytest.raises(ConfigurationError):
            FastEngine(g1, lambda _v: FloodMin(1),
                       csr=CSRGraph.from_graph(g2))

    def test_max_rounds_guard(self, path9):
        class Forever(NodeProgram):
            def init(self, ctx):
                return {NodeProgram.BROADCAST: 0}

            def step(self, ctx, round_index, inbox):
                return {NodeProgram.BROADCAST: 0}

        with pytest.raises(ModelViolation):
            FastEngine(path9, lambda _v: Forever(), max_rounds=10).run()


class _FinishAfterBig(NodeProgram):
    def init(self, ctx):
        return {NodeProgram.BROADCAST: "x" * 4096}

    def step(self, ctx, round_index, inbox):
        ctx.finish(len(inbox))
        return {}
