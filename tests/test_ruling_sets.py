"""Ruling sets: greedy construction, verification, Voronoi clustering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ruling_sets import (
    cluster_adjacency,
    greedy_ruling_set,
    verify_ruling_set,
    voronoi_clusters,
)
from repro.errors import ConfigurationError
from repro.graphs import assign, make

from helpers import family_graphs


class TestGreedyRulingSet:
    @given(alpha=st.integers(1, 6), seed=st.integers(0, 4))
    def test_invariants_on_random_graphs(self, alpha, seed):
        g = assign(make("gnp-sparse", 40, seed=seed), "random", seed=seed)
        selected, _report = greedy_ruling_set(g, alpha=alpha)
        problems = verify_ruling_set(g, selected, alpha=alpha, beta=alpha - 1)
        assert problems == [], problems

    def test_all_families(self):
        for name, g in family_graphs(40):
            selected, _ = greedy_ruling_set(g, alpha=3)
            assert verify_ruling_set(g, selected, 3, 2) == [], name

    def test_subset_restriction(self, grid36):
        subset = [v for v in grid36.nodes() if v % 3 == 0]
        selected, _ = greedy_ruling_set(grid36, alpha=3, subset=subset)
        assert selected <= set(subset)
        assert verify_ruling_set(grid36, selected, 3, 2, subset=subset) == []

    def test_alpha_one_selects_everything(self, path9):
        selected, _ = greedy_ruling_set(path9, alpha=1)
        assert selected == set(path9.nodes())

    def test_order_by_uid_vs_index(self, gnp60):
        by_uid, _ = greedy_ruling_set(gnp60, alpha=3, order="uid")
        by_index, _ = greedy_ruling_set(gnp60, alpha=3, order="index")
        # Both valid; possibly different sets.
        assert verify_ruling_set(gnp60, by_uid, 3, 2) == []
        assert verify_ruling_set(gnp60, by_index, 3, 2) == []

    def test_deterministic(self, gnp60):
        s1, _ = greedy_ruling_set(gnp60, alpha=4)
        s2, _ = greedy_ruling_set(gnp60, alpha=4)
        assert s1 == s2

    def test_round_accounting(self, gnp60):
        _s, report = greedy_ruling_set(gnp60, alpha=4)
        assert report.accounted
        assert report.rounds == 4 * 6  # alpha * ceil(log2 60)

    def test_validates_alpha(self, path9):
        with pytest.raises(ConfigurationError):
            greedy_ruling_set(path9, alpha=0)

    def test_validates_order(self, path9):
        with pytest.raises(ConfigurationError):
            greedy_ruling_set(path9, alpha=2, order="degree")


class TestVerify:
    def test_detects_close_pair(self, path9):
        problems = verify_ruling_set(path9, {0, 1}, alpha=3, beta=8)
        assert any("distance" in p for p in problems)

    def test_detects_uncovered(self, path9):
        problems = verify_ruling_set(path9, {0}, alpha=2, beta=3)
        assert any("beyond distance" in p for p in problems)

    def test_detects_stray_selection(self, path9):
        problems = verify_ruling_set(path9, {0}, alpha=2, beta=9,
                                     subset=[1, 2, 3])
        assert any("outside U" in p for p in problems)


class TestVoronoi:
    def test_assignment_is_nearest_center(self, grid36):
        centers, _ = greedy_ruling_set(grid36, alpha=4)
        assignment = voronoi_clusters(grid36, centers)
        for v, c in assignment.items():
            dv = grid36.distance(v, c)
            assert all(dv <= grid36.distance(v, other)
                       for other in centers)

    def test_assignment_covers_all_nodes(self, gnp60):
        centers, _ = greedy_ruling_set(gnp60, alpha=3)
        assignment = voronoi_clusters(gnp60, centers)
        assert set(assignment) == set(gnp60.nodes())

    def test_clusters_are_connected(self, gnp60):
        centers, _ = greedy_ruling_set(gnp60, alpha=3)
        assignment = voronoi_clusters(gnp60, centers)
        import networkx as nx
        for c in centers:
            members = [v for v, cc in assignment.items() if cc == c]
            assert nx.is_connected(gnp60.induced(members))

    def test_restrict_to(self, path9):
        allowed = {0, 1, 2, 3}
        assignment = voronoi_clusters(path9, [0], restrict_to=allowed)
        assert set(assignment) == allowed

    def test_restricted_center_must_be_allowed(self, path9):
        with pytest.raises(ConfigurationError):
            voronoi_clusters(path9, [8], restrict_to={0, 1})

    def test_requires_centers(self, path9):
        with pytest.raises(ConfigurationError):
            voronoi_clusters(path9, [])

    def test_cluster_adjacency(self, path9):
        assignment = voronoi_clusters(path9, [0, 8])
        cg = cluster_adjacency(path9, assignment)
        assert set(cg.nodes()) == {0, 8}
        assert cg.has_edge(0, 8)

    def test_cluster_adjacency_isolated(self, path9):
        assignment = voronoi_clusters(path9, [4])
        cg = cluster_adjacency(path9, assignment)
        assert cg.degree(4) == 0
