"""Edge cases: disconnected graphs, tiny graphs, and the engine fix-up."""

import networkx as nx
import pytest

from repro.core.decomposition import (
    deterministic_decomposition,
    elkin_neiman,
    shared_randomness_decomposition,
)
from repro.core.mis import is_valid_mis, luby_mis, mis_via_decomposition
from repro.core.sinkless import is_sinkless, randomized_orientation_engine
from repro.graphs import random_regular, assign
from repro.randomness import IndependentSource
from repro.sim.graph import DistributedGraph


def disconnected_graph() -> DistributedGraph:
    raw = nx.Graph()
    raw.add_edges_from(nx.path_graph(6).edges())
    raw.add_edges_from((u + 10, v + 10) for u, v in nx.cycle_graph(5).edges())
    raw.add_node(20)  # an isolated node
    return DistributedGraph(raw, uid_seed=3)


class TestDisconnectedGraphs:
    def test_en_handles_components(self):
        g = disconnected_graph()
        dec, _r, _e = elkin_neiman(g, IndependentSource(seed=4),
                                   finish="singletons")
        assert dec.violations(g) == []
        # No cluster spans components.
        comps = g.connected_components()
        for members in dec.clusters().values():
            assert any(members <= comp for comp in comps)

    def test_deterministic_handles_components(self):
        g = disconnected_graph()
        dec, _ = deterministic_decomposition(g)
        assert dec.violations(g) == []

    def test_shared_randomness_handles_components(self):
        g = disconnected_graph()
        dec, _r, _e = shared_randomness_decomposition(g, seed=5, strict=False)
        assert dec is not None
        assert dec.violations(g) == []

    def test_luby_handles_components(self):
        g = disconnected_graph()
        result = luby_mis(g, IndependentSource(seed=6))
        assert is_valid_mis(g, result.outputs)
        assert result.outputs[g.index_of_uid(g.uid(
            [v for v in g.nodes() if g.degree(v) == 0][0]))] is True

    def test_mis_via_decomposition_handles_components(self):
        g = disconnected_graph()
        dec, _ = deterministic_decomposition(g)
        flags, _ = mis_via_decomposition(g, dec)
        assert is_valid_mis(g, flags)


class TestTinyGraphs:
    def test_single_node_everything(self):
        g = DistributedGraph(nx.path_graph(1))
        dec, _ = deterministic_decomposition(g)
        assert dec.is_valid(g)
        dec2, _r, _e = elkin_neiman(g, IndependentSource(seed=1),
                                    finish="singletons")
        assert dec2.is_valid(g)
        result = luby_mis(g, IndependentSource(seed=1))
        assert result.outputs[0] is True

    def test_single_edge(self):
        g = DistributedGraph(nx.path_graph(2), uid_seed=2)
        result = luby_mis(g, IndependentSource(seed=2))
        assert sorted(result.outputs.values()) == [False, True]

    def test_two_isolated_nodes(self):
        raw = nx.Graph()
        raw.add_nodes_from([0, 1])
        g = DistributedGraph(raw)
        result = luby_mis(g, IndependentSource(seed=3))
        assert all(result.outputs.values())


class TestEngineSinkless:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_engine_fixup_valid(self, seed):
        g = assign(random_regular(36, 3, seed=seed), "random", seed=seed)
        orientation, result = randomized_orientation_engine(
            g, IndependentSource(seed=50 + seed))
        assert is_sinkless(g, orientation)

    def test_congest_message_sizes(self):
        from repro.sim.messages import congest_limit

        g = assign(random_regular(24, 3, seed=9), "random", seed=9)
        _o, result = randomized_orientation_engine(
            g, IndependentSource(seed=9))
        assert result.report.max_message_bits <= congest_limit(g.n)

    def test_rounds_bounded_by_horizon(self):
        g = assign(random_regular(24, 3, seed=2), "random", seed=2)
        _o, result = randomized_orientation_engine(
            g, IndependentSource(seed=2), horizon=40)
        assert result.report.rounds <= 42

    def test_edge_views_consistent(self):
        g = assign(random_regular(30, 3, seed=4), "random", seed=4)
        orientation, _res = randomized_orientation_engine(
            g, IndependentSource(seed=4))
        # Every edge appears exactly once with a consistent direction.
        assert len(orientation) == sum(1 for _ in g.edges())
