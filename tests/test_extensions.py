"""Extensions: MIS-based ruling sets, tree orientations, ablation tables."""

import pytest

from repro.analysis.ablations import ABLATIONS, a1_gap_rule
from repro.core.ruling_sets import ruling_set_via_mis, verify_ruling_set
from repro.core.sinkless import is_sinkless, tree_orientation
from repro.errors import ConfigurationError
from repro.graphs import assign, complete_tree, random_tree
from repro.randomness import IndependentSource


class TestRulingSetViaMIS:
    @pytest.mark.parametrize("alpha", [2, 3, 4])
    def test_valid_ruling_set(self, gnp60, alpha):
        selected, report = ruling_set_via_mis(gnp60, alpha, seed=7)
        assert verify_ruling_set(gnp60, selected, alpha, alpha - 1) == []
        assert report.rounds > 0

    def test_alpha_two_is_plain_mis(self, dense40):
        from repro.core.mis import is_valid_mis

        selected, _rep = ruling_set_via_mis(dense40, 2, seed=3)
        flags = {v: v in selected for v in dense40.nodes()}
        assert is_valid_mis(dense40, flags)

    def test_randomness_flows_through(self, gnp60):
        source = IndependentSource(seed=11)
        _s, report = ruling_set_via_mis(gnp60, 3, source=source)
        assert report.randomness_bits > 0
        assert source.bits_consumed == report.randomness_bits

    def test_validates_alpha(self, gnp60):
        with pytest.raises(ConfigurationError):
            ruling_set_via_mis(gnp60, 1)

    def test_agrees_with_greedy_on_invariants(self, grid36):
        from repro.core.ruling_sets import greedy_ruling_set

        alpha = 3
        mis_based, _ = ruling_set_via_mis(grid36, alpha, seed=5)
        greedy, _ = greedy_ruling_set(grid36, alpha)
        for s in (mis_based, greedy):
            assert verify_ruling_set(grid36, s, alpha, alpha - 1) == []


class TestTreeOrientation:
    @pytest.mark.parametrize("branching,height", [(2, 3), (3, 2), (4, 2)])
    def test_complete_trees(self, branching, height):
        g = assign(complete_tree(branching, height), "random", seed=2)
        orientation, report = tree_orientation(g)
        assert is_sinkless(g, orientation)
        assert report.rounds >= height

    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_random_trees(self, seed):
        g = assign(random_tree(40, seed=seed), "random", seed=seed)
        orientation, _ = tree_orientation(g)
        assert is_sinkless(g, orientation)

    def test_path_is_trivially_fine(self, path9):
        orientation, _ = tree_orientation(path9)
        assert is_sinkless(path9, orientation)

    def test_rejects_cycles(self, cycle12):
        with pytest.raises(ConfigurationError):
            tree_orientation(cycle12)

    def test_deterministic(self):
        g = assign(random_tree(30, seed=7), "random", seed=7)
        o1, _ = tree_orientation(g)
        o2, _ = tree_orientation(g)
        assert o1 == o2


class TestAblations:
    def test_registry(self):
        assert sorted(ABLATIONS) == ["a1", "a2", "a3"]

    def test_a1_shows_the_gap_rule_matters(self):
        table = a1_gap_rule(quick=True, seed=3)
        by_rule = {row["rule"]: row for row in table.rows}
        assert by_rule["paper (gap > 1)"]["valid rate"] > \
            by_rule["ablated (gap > 0)"]["valid rate"]

    def test_e11_registered(self):
        from repro.analysis import EXPERIMENTS

        assert "e11" in EXPERIMENTS
        table = EXPERIMENTS["e11"](quick=True, seed=3)
        assert all(row["final guess N"] >= row["n"] for row in table.rows)
