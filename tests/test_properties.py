"""Property-based invariants across randomly generated inputs.

These tests complement the per-module suites: hypothesis drives the
graph family, size, seed, and algorithm parameters, and the assertions
are the *universal* invariants — the statements that must hold for every
input, not just the fixture graphs.
"""

import math

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coloring import coloring_via_decomposition, is_proper_coloring
from repro.core.decomposition import (
    deterministic_decomposition,
    elkin_neiman,
    measure,
)
from repro.core.mis import is_valid_mis, luby_mis, mis_via_decomposition
from repro.core.ruling_sets import greedy_ruling_set, verify_ruling_set, voronoi_clusters
from repro.graphs import FAMILIES, assign, make
from repro.randomness import IndependentSource
from repro.sim.messages import message_bits

graph_family = st.sampled_from(sorted(FAMILIES))
graph_size = st.integers(8, 60)
seeds = st.integers(0, 10 ** 6)


def build(family, n, seed):
    return assign(make(family, n, seed=seed), "random", seed=seed)


class TestDecompositionInvariants:
    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=20)
    def test_en_always_valid_partition(self, family, n, seed):
        g = build(family, n, seed)
        dec, _r, _e = elkin_neiman(g, IndependentSource(seed=seed),
                                   finish="singletons")
        assert set(dec.cluster_of) == set(g.nodes())
        assert dec.violations(g) == []

    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=20)
    def test_deterministic_bounds_always_hold(self, family, n, seed):
        g = build(family, n, seed)
        dec, _rep = deterministic_decomposition(g)
        logn = max(1, math.ceil(math.log2(max(2, g.n))))
        assert dec.num_colors() <= logn + 1
        assert dec.max_strong_diameter(g) <= 2 * logn
        assert dec.violations(g) == []

    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=15)
    def test_clusters_induce_connected_subgraphs(self, family, n, seed):
        g = build(family, n, seed)
        dec, _r, _e = elkin_neiman(g, IndependentSource(seed=seed),
                                   finish="singletons")
        for members in dec.clusters().values():
            assert nx.is_connected(g.induced(members))

    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=15)
    def test_measure_is_consistent_with_validity(self, family, n, seed):
        g = build(family, n, seed)
        dec, _rep = deterministic_decomposition(g)
        q = measure(g, dec)
        assert q.valid
        assert q.max_weak_diameter <= q.max_strong_diameter
        assert q.clusters >= q.colors


class TestConsumerInvariants:
    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=15)
    def test_mis_via_any_decomposition_is_valid(self, family, n, seed):
        g = build(family, n, seed)
        dec, _rep = deterministic_decomposition(g)
        flags, _r = mis_via_decomposition(g, dec)
        assert is_valid_mis(g, flags)

    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=15)
    def test_coloring_via_any_decomposition_is_proper(self, family, n, seed):
        g = build(family, n, seed)
        dec, _rep = deterministic_decomposition(g)
        colors, _r = coloring_via_decomposition(g, dec)
        assert is_proper_coloring(g, colors, g.max_degree() + 1)

    @given(n=st.integers(4, 40), seed=seeds)
    @settings(max_examples=10)
    def test_luby_valid_on_random_gnp(self, n, seed):
        g = build("gnp-dense", n, seed)
        result = luby_mis(g, IndependentSource(seed=seed + 1))
        assert is_valid_mis(g, result.outputs)


class TestRulingSetInvariants:
    @given(family=graph_family, n=graph_size, seed=seeds,
           alpha=st.integers(1, 8))
    @settings(max_examples=20)
    def test_greedy_always_alpha_alpha_minus_one(self, family, n, seed, alpha):
        g = build(family, n, seed)
        selected, _rep = greedy_ruling_set(g, alpha=alpha)
        assert verify_ruling_set(g, selected, alpha, max(0, alpha - 1)) == []

    @given(family=graph_family, n=graph_size, seed=seeds)
    @settings(max_examples=15)
    def test_voronoi_respects_distances(self, family, n, seed):
        g = build(family, n, seed)
        centers, _ = greedy_ruling_set(g, alpha=4)
        assignment = voronoi_clusters(g, centers)
        for v, c in assignment.items():
            best = min(g.distance(v, x) for x in centers)
            assert g.distance(v, c) == best


class TestMessageAccounting:
    @given(value=st.integers(-(2 ** 40), 2 ** 40))
    def test_int_size_monotone_in_magnitude(self, value):
        assert message_bits(value) >= message_bits(0) - 1
        assert message_bits(value * 2) >= message_bits(value) - 1

    @given(items=st.lists(st.integers(0, 255), max_size=12))
    def test_container_at_least_sum_of_parts(self, items):
        total = message_bits(tuple(items))
        assert total >= sum(message_bits(x) for x in items)

    @given(text=st.text(
        alphabet=st.characters(min_codepoint=32, max_codepoint=126),
        max_size=40))
    def test_string_size_linear(self, text):
        assert message_bits(text) == 8 * len(text) + 2


class TestSeedFunctionality:
    @given(seed=seeds, n=st.integers(6, 30))
    @settings(max_examples=10)
    def test_full_pipeline_is_seed_deterministic(self, seed, n):
        def run():
            g = build("gnp-sparse", n, seed)
            dec, _r, _e = elkin_neiman(g, IndependentSource(seed=seed),
                                       finish="singletons")
            return dec.cluster_of

        assert run() == run()
