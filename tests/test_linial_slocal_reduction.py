"""Cole–Vishkin reduction and the SLOCAL->LOCAL completeness reduction."""

import pytest

from repro.core.coloring import is_proper_coloring
from repro.core.decomposition import elkin_neiman
from repro.core.linial import log_star, reduce_to_three_colors
from repro.core.mis import is_valid_mis
from repro.core.slocal_reduction import (
    derandomized_coloring,
    derandomized_mis,
    run_slocal_via_decomposition,
)
from repro.errors import ConfigurationError
from repro.graphs import assign, make
from repro.randomness import IndependentSource
from repro.sim.slocal import SLocalView
from repro.structures import Decomposition


class TestLogStar:
    def test_known_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 0
        assert log_star(4) == 1
        assert log_star(16) == 2
        assert log_star(65536) == 3
        assert log_star(2 ** 64) == 4

    def test_monotone(self):
        values = [log_star(n) for n in (2, 10, 100, 10 ** 6, 2 ** 70)]
        assert values == sorted(values)


class TestColeVishkin:
    @pytest.mark.parametrize("family,n", [
        ("cycle", 20), ("cycle", 101), ("cycle", 512),
        ("path", 2), ("path", 33), ("path", 400),
    ])
    def test_three_coloring(self, family, n):
        g = assign(make(family, n), "random", seed=7)
        result = reduce_to_three_colors(g)
        assert is_proper_coloring(g, result.outputs)
        assert set(result.outputs.values()) <= {0, 1, 2}

    def test_round_count_is_log_star_like(self):
        # Same tiny round count across two orders of magnitude of n.
        rounds = []
        for n in (32, 1024):
            g = assign(make("cycle", n), "random", seed=3)
            rounds.append(reduce_to_three_colors(g).report.rounds)
        assert rounds[0] == rounds[1]
        assert rounds[0] <= 12

    def test_zero_randomness(self):
        g = assign(make("cycle", 64), "random", seed=1)
        result = reduce_to_three_colors(g)
        assert result.report.randomness_bits == 0

    def test_rejects_high_degree(self, dense40):
        with pytest.raises(ConfigurationError):
            reduce_to_three_colors(dense40)

    def test_single_path_edge(self):
        g = assign(make("path", 2), "sequential")
        result = reduce_to_three_colors(g)
        assert result.outputs[0] != result.outputs[1]


class TestSLocalReduction:
    def test_derandomized_mis_everywhere(self):
        for fam in ("cycle", "grid", "gnp-sparse", "tree"):
            g = assign(make(fam, 30, seed=5), "random", seed=5)
            flags, report = derandomized_mis(g)
            assert is_valid_mis(g, flags), fam
            assert report.accounted

    def test_derandomized_coloring_everywhere(self):
        for fam in ("cycle", "grid", "gnp-sparse"):
            g = assign(make(fam, 30, seed=6), "random", seed=6)
            colors, _rep = derandomized_coloring(g)
            assert is_proper_coloring(g, colors, g.max_degree() + 1), fam

    def test_pipeline_is_fully_deterministic(self, gnp60):
        assert derandomized_mis(gnp60)[0] == derandomized_mis(gnp60)[0]

    def test_randomized_decomposition_also_works(self, gnp60):
        """P-RLOCAL side: feed an EN decomposition of the power graph."""
        power = gnp60.power_graph(3)
        dec, _r, _e = elkin_neiman(power, IndependentSource(seed=9),
                                   finish="singletons")

        def decide(view: SLocalView) -> bool:
            return not any(view.records.get(u) is True
                           for u, d in view.nodes.items() if d == 1)

        result = run_slocal_via_decomposition(
            gnp60, locality=1, decide=decide, decomposition_of_power=dec)
        assert is_valid_mis(gnp60, result.outputs)

    def test_same_color_clusters_are_view_disjoint(self, gnp60):
        """The reduction's parallelism claim, checked explicitly."""
        r = 1
        power = gnp60.power_graph(2 * r + 1)
        from repro.core.decomposition import deterministic_decomposition
        dec, _ = deterministic_decomposition(power)
        by_color = {}
        for cid, members in dec.clusters().items():
            by_color.setdefault(dec.color_of[cid], []).append(members)
        for color, clusters in by_color.items():
            for i, a in enumerate(clusters):
                for b in clusters[i + 1:]:
                    for x in a:
                        for y in b:
                            assert gnp60.distance(x, y) > 2 * r + 1

    def test_invalid_decomposition_rejected(self, path9):
        bad = Decomposition(cluster_of={v: 0 for v in path9.nodes()},
                            color_of={})
        with pytest.raises(ConfigurationError):
            run_slocal_via_decomposition(
                path9, locality=1, decide=lambda v: True,
                decomposition_of_power=bad)

    def test_none_record_rejected(self, path9):
        with pytest.raises(ConfigurationError):
            run_slocal_via_decomposition(
                path9, locality=1, decide=lambda v: None)

    def test_negative_locality_rejected(self, path9):
        with pytest.raises(ConfigurationError):
            run_slocal_via_decomposition(
                path9, locality=-1, decide=lambda v: True)

    def test_round_accounting_scales_with_colors(self, gnp60):
        _flags, report = derandomized_mis(gnp60)
        assert report.rounds > 0
        assert any("SLOCAL->LOCAL" in note for note in report.notes)
