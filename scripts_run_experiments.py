"""Regenerate every experiment table at the full (non-quick) profile."""
import sys, time
from repro.analysis import EXPERIMENTS

out = []
for name in sorted(EXPERIMENTS):
    t = time.time()
    table = EXPERIMENTS[name](quick=False, seed=1)
    took = time.time() - t
    out.append((name, table, took))
    print(f"### done {name} in {took:.1f}s", flush=True)
    print(table.render(), flush=True)
    print(flush=True)
