"""Regenerate experiment tables, fanning seed sweeps across processes.

Every experiment's per-seed trial loop goes through
``repro.sim.batch.run_trials``, so ``--workers N`` parallelizes the
sweeps without changing a single number in the tables (trial randomness
is a pure function of the trial spec). ``--store DIR`` checkpoints every
completed trial, making full-profile regeneration resumable: rerun the
same command after a kill and only the missing trials execute.
``--shard-index/--shard-count`` let independent hosts each compute a
deterministic slice into their own store; ``--merge`` combines shard
stores, after which a plain ``--store`` run renders the tables entirely
from cache. ``--graph-cache DIR`` (or ``$REPRO_GRAPH_CACHE``) persists
frozen graph topologies across sweeps, so reruns memory-map each graph
instead of rebuilding it (README "Large graphs").

Usage::

    PYTHONPATH=src python scripts_run_experiments.py               # full, serial
    PYTHONPATH=src python scripts_run_experiments.py --workers 8   # full, 8 procs
    PYTHONPATH=src python scripts_run_experiments.py --quick e09   # one table, quick
    PYTHONPATH=src python scripts_run_experiments.py --store runs/full   # resumable
    PYTHONPATH=src python scripts_run_experiments.py --store runs/h0 \\
        --shard-index 0 --shard-count 2                            # host 0 slice
    PYTHONPATH=src python scripts_run_experiments.py --store runs/full \\
        --merge runs/h0 runs/h1                                    # combine

``--store-format columnar`` sweeps straight into the packed-column
analytics layout, ``--compact DEST`` migrates a finished store into the
other layout (verified record-for-record), and ``--query FIELD=VALUE...``
answers filtered aggregates without a full parse (README "Columnar
store")::

    PYTHONPATH=src python scripts_run_experiments.py --store runs/full \\
        --compact runs/full.col                                    # migrate
    PYTHONPATH=src python scripts_run_experiments.py \\
        --store runs/full.col --query family=cycle n=64            # query

Coordinated sweeps replace the manual shard bookkeeping: one
``--coordinator`` process leases work units to any number of
``--worker`` processes and merges their pushed stores byte-identically
to a single-host run (README "Distributed sweeps"). The coordinator
write-ahead journals every lease transition into its staging directory,
so a killed coordinator restarts with ``--resume`` and picks up where
it died; ``--auth-token``/``$REPRO_SWEEP_TOKEN`` gates the control
plane and ``--timeout`` bounds the wait on a stalled fleet::

    PYTHONPATH=src python scripts_run_experiments.py --store runs/full \\
        --coordinator 0.0.0.0:8642                                 # serve
    PYTHONPATH=src python scripts_run_experiments.py \\
        --worker http://host:8642                                  # per worker
    PYTHONPATH=src python scripts_run_experiments.py --store runs/full \\
        --coordinator 0.0.0.0:8642 --resume                        # after a crash

Workers retry transient failures with jittered exponential backoff
(``--retries``); the coordinator quarantines units the whole fleet
keeps failing (``--max-attempts``) and reports them in
``quarantine.json``; ``--chaos SEED`` injects deterministic faults for
drills (README "Fault model & troubleshooting").
"""
import argparse
import sys
import time

from repro.analysis import EXPERIMENTS
from repro.analysis.experiments import SWEEPING
from repro.analysis.cli import (
    add_scenario_argument,
    add_store_arguments,
    apply_scenario_argument,
    positive_int,
    resolve_store_arguments,
    run_scenario_locally,
    run_store_commands,
)
from repro.analysis.coordinated import (
    add_coordination_arguments,
    run_coordination,
)
from repro.errors import ConfigurationError


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="quick profile (benchmark scale)")
    parser.add_argument("--seed", type=int, default=None,
                        help="base seed for the sweeps (default 1; "
                             "conflicts with --scenario)")
    parser.add_argument("--workers", type=positive_int, default=None,
                        help="process fan-out for the seed-sweeping "
                             "experiments e01-e06/e08/e10 "
                             "(default: $REPRO_WORKERS or 1)")
    parser.add_argument("--list", action="store_true",
                        help="with --store: list the store's contents and "
                             "exit")
    add_scenario_argument(parser)
    add_store_arguments(parser)
    add_coordination_arguments(parser)
    args = parser.parse_args(argv)

    try:
        scenario, names, quick, seed = apply_scenario_argument(
            args, quick=args.quick, profile_flag_set=args.quick,
            profile_flag="--quick")
        handled = run_coordination(args, names, quick=quick, seed=seed,
                                   scenario=scenario)
        if handled is not None:
            return handled
        store, shard = resolve_store_arguments(args)
        handled = run_store_commands(args, store)
        if handled is None and scenario is not None:
            handled = run_scenario_locally(scenario, args, store, shard)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if handled is not None:
        return handled
    if args.list:
        print("--list without --store lists nothing here; "
              "see python -m repro.analysis --list", file=sys.stderr)
        return 2

    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for name in names:
        if shard is not None and name not in SWEEPING:
            print(f"### {name} has no trial sweep to shard; skipped — "
                  f"it runs on the merge host", flush=True)
            continue
        start = time.time()
        table = EXPERIMENTS[name](quick=quick, seed=seed,
                                  workers=args.workers, store=store,
                                  shard=shard)
        took = time.time() - start
        if shard is not None:
            print(f"### shard {shard[0]}/{shard[1]} of {name} populated in "
                  f"{took:.1f}s; store holds {len(store)} result(s)",
                  flush=True)
            continue
        print(f"### done {name} in {took:.1f}s", flush=True)
        print(table.render(), flush=True)
        print(flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
