"""Regenerate experiment tables, fanning seed sweeps across processes.

Every experiment's per-seed trial loop goes through
``repro.sim.batch.run_trials``, so ``--workers N`` parallelizes the
sweeps without changing a single number in the tables (trial randomness
is a pure function of the trial spec).

Usage::

    PYTHONPATH=src python scripts_run_experiments.py               # full, serial
    PYTHONPATH=src python scripts_run_experiments.py --workers 8   # full, 8 procs
    PYTHONPATH=src python scripts_run_experiments.py --quick e09   # one table, quick
"""
import argparse
import sys
import time

from repro.analysis import EXPERIMENTS
from repro.analysis.cli import positive_int


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="quick profile (benchmark scale)")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--workers", type=positive_int, default=None,
                        help="process fan-out for the seed-sweeping "
                             "experiments e01-e06/e08/e10 "
                             "(default: $REPRO_WORKERS or 1)")
    args = parser.parse_args(argv)

    names = args.names or sorted(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"choose from {sorted(EXPERIMENTS)}", file=sys.stderr)
        return 2

    for name in names:
        start = time.time()
        table = EXPERIMENTS[name](quick=args.quick, seed=args.seed,
                                  workers=args.workers)
        took = time.time() - start
        print(f"### done {name} in {took:.1f}s", flush=True)
        print(table.render(), flush=True)
        print(flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
